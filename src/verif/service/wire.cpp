#include "wire.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "sim/io_retry.hpp"
#include "sim/logging.hpp"

namespace neo
{

namespace
{

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    std::memcpy(p, &v, 4);
}

double
monoNow()
{
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

} // namespace

void
putString(SnapshotWriter &w, const std::string &s)
{
    w.putU32(static_cast<std::uint32_t>(s.size()));
    w.putBytes(reinterpret_cast<const std::uint8_t *>(s.data()),
               s.size());
}

std::string
getString(SnapshotReader &r)
{
    const std::uint32_t n = r.getU32();
    if (n > kMaxFrameBytes) {
        // A length no real frame can carry is corruption: latch the
        // reader so the rest of the record fails too, instead of
        // silently decoding the remaining fields misaligned.
        r.fail();
        return std::string();
    }
    std::string s(n, '\0');
    r.getBytes(reinterpret_cast<std::uint8_t *>(s.data()), n);
    return r.ok() ? s : std::string();
}

std::vector<std::uint8_t>
encodeFrame(MsgType type, const std::vector<std::uint8_t> &body)
{
    neo_assert(body.size() + 1 <= kMaxFrameBytes, "oversized frame");
    std::vector<std::uint8_t> frame(8 + 1 + body.size());
    const std::uint32_t len =
        static_cast<std::uint32_t>(1 + body.size());
    storeU32(frame.data(), len);
    frame[8] = static_cast<std::uint8_t>(type);
    if (!body.empty())
        std::memcpy(frame.data() + 9, body.data(), body.size());
    storeU32(frame.data() + 4, crc32(frame.data() + 8, len));
    return frame;
}

void
FrameReader::feed(const std::uint8_t *data, std::size_t n)
{
    if (corrupt_)
        return;
    // Compact lazily: drop consumed prefix once it dominates.
    if (pos_ > 0 && pos_ >= buf_.size() / 2 && pos_ > 4096) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

bool
FrameReader::next(MsgType &type, std::vector<std::uint8_t> &body)
{
    if (corrupt_ || buf_.size() - pos_ < 8)
        return false;
    const std::uint32_t len = loadU32(buf_.data() + pos_);
    const std::uint32_t crc = loadU32(buf_.data() + pos_ + 4);
    if (len == 0 || len > kMaxFrameBytes) {
        corrupt_ = true;
        return false;
    }
    if (buf_.size() - pos_ < 8 + static_cast<std::size_t>(len))
        return false;
    const std::uint8_t *payload = buf_.data() + pos_ + 8;
    if (crc32(payload, len) != crc) {
        corrupt_ = true;
        return false;
    }
    type = static_cast<MsgType>(payload[0]);
    body.assign(payload + 1, payload + len);
    pos_ += 8 + len;
    return true;
}

Channel &
Channel::operator=(Channel &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        failed_ = o.failed_;
        out_ = std::move(o.out_);
        outPos_ = o.outPos_;
        flushedTotal_ = o.flushedTotal_;
        stallFlushedMark_ = o.stallFlushedMark_;
        stallSince_ = o.stallSince_;
        in_ = std::move(o.in_);
        o.fd_ = -1;
    }
    return *this;
}

bool
Channel::writeStalled(double now, double limitSeconds)
{
    if (!wantsWrite() || flushedTotal_ != stallFlushedMark_) {
        // Empty buffer or bytes moved since the last check: not stuck.
        stallFlushedMark_ = flushedTotal_;
        stallSince_ = now;
        return false;
    }
    return now - stallSince_ > limitSeconds;
}

void
Channel::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

void
Channel::queueFrame(MsgType type, const std::vector<std::uint8_t> &body)
{
    if (!open())
        return;
    const std::vector<std::uint8_t> frame = encodeFrame(type, body);
    out_.insert(out_.end(), frame.begin(), frame.end());
    // Opportunistic drain keeps the buffer small on a healthy link.
    flush();
}

void
Channel::flush()
{
    if (!open())
        return;
    while (outPos_ < out_.size()) {
        const ssize_t w = writeRetry(fd_, out_.data() + outPos_,
                                     out_.size() - outPos_);
        if (w > 0) {
            outPos_ += static_cast<std::size_t>(w);
            flushedTotal_ += static_cast<std::uint64_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        failed_ = true;
        return;
    }
    if (outPos_ == out_.size()) {
        out_.clear();
        outPos_ = 0;
    }
}

void
Channel::readSome()
{
    if (!open())
        return;
    std::uint8_t chunk[65536];
    for (;;) {
        const ssize_t r = readRetry(fd_, chunk, sizeof chunk);
        if (r > 0) {
            in_.feed(chunk, static_cast<std::size_t>(r));
            if (r < static_cast<ssize_t>(sizeof chunk))
                return;
            continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        failed_ = true; // EOF or hard error: the peer is gone
        return;
    }
}

bool
Channel::next(MsgType &type, std::vector<std::uint8_t> &body)
{
    if (in_.corrupt()) {
        failed_ = true;
        return false;
    }
    return in_.next(type, body);
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace
{

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string &err)
{
    if (path.size() + 1 > sizeof addr.sun_path) {
        err = path + ": socket path too long";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, err))
        return -1;
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) == 0) {
            if (::listen(fd, 64) != 0) {
                err = std::string("listen: ") + std::strerror(errno);
                ::close(fd);
                return -1;
            }
            return fd;
        }
        const int bindErrno = errno;
        ::close(fd);
        if (bindErrno != EADDRINUSE || attempt == 1) {
            err = path + ": " + std::strerror(bindErrno);
            return -1;
        }
        // Address in use: probe it. A live coordinator accepts; a
        // socket file orphaned by SIGKILL refuses, and is safe to
        // unlink and take over.
        std::string probeErr;
        const int probe = connectUnix(path, probeErr);
        if (probe >= 0) {
            ::close(probe);
            err = path + ": a coordinator is already serving here";
            return -1;
        }
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
            err = path + ": stale socket: " + std::strerror(errno);
            return -1;
        }
    }
    err = path + ": unreachable";
    return -1;
}

int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        err = path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
looksLikeTcpAddress(const std::string &addr)
{
    return addr.find(':') != std::string::npos;
}

bool
parseHostPort(const std::string &addr, std::string &host,
              std::uint16_t &port, std::string &err)
{
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
        err = addr + ": expected host:port";
        return false;
    }
    host = addr.substr(0, colon);
    const std::string portStr = addr.substr(colon + 1);
    if (portStr.empty()) {
        err = addr + ": missing port";
        return false;
    }
    char *end = nullptr;
    const long v = std::strtol(portStr.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0 || v > 65535) {
        err = addr + ": bad port";
        return false;
    }
    port = static_cast<std::uint16_t>(v);
    return true;
}

namespace
{

bool
fillSockaddrIn(const std::string &host, std::uint16_t port,
               sockaddr_in &addr, const char *emptyHostDefault,
               std::string &err)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string h = host.empty() ? emptyHostDefault : host;
    if (::inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
        err = h + ": not a dotted-quad IPv4 address";
        return false;
    }
    return true;
}

} // namespace

int
listenTcp(const std::string &addrStr, std::string &err,
          std::string *bound)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseHostPort(addrStr, host, port, err))
        return -1;
    sockaddr_in addr;
    if (!fillSockaddrIn(host, port, addr, "0.0.0.0", err))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        err = addrStr + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (bound != nullptr) {
        sockaddr_in got;
        socklen_t len = sizeof got;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&got),
                          &len) != 0) {
            err = std::string("getsockname: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        char ip[INET_ADDRSTRLEN] = {0};
        ::inet_ntop(AF_INET, &got.sin_addr, ip, sizeof ip);
        *bound = std::string(ip) + ":" +
                 std::to_string(ntohs(got.sin_port));
    }
    return fd;
}

int
connectTcp(const std::string &addrStr, std::string &err,
           double timeoutSeconds)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseHostPort(addrStr, host, port, err))
        return -1;
    sockaddr_in addr;
    if (!fillSockaddrIn(host, port, addr, "127.0.0.1", err))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (timeoutSeconds > 0 && !setNonBlocking(fd)) {
        err = std::string("fcntl: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && timeoutSeconds > 0 && errno == EINPROGRESS) {
        // Wait out the three-way handshake under a deadline: a black
        // hole never answers, and blocking connect would hang for the
        // kernel's minutes-long default.
        const double deadline = monoNow() + timeoutSeconds;
        for (;;) {
            const double left = deadline - monoNow();
            if (left <= 0) {
                err = addrStr + ": connect timed out";
                ::close(fd);
                return -1;
            }
            pollfd p{fd, POLLOUT, 0};
            const int pr =
                ::poll(&p, 1, static_cast<int>(left * 1000) + 1);
            if (pr < 0 && errno == EINTR)
                continue;
            if (pr > 0)
                break;
            if (pr < 0) {
                err = std::string("poll: ") + std::strerror(errno);
                ::close(fd);
                return -1;
            }
        }
        int soErr = 0;
        socklen_t len = sizeof soErr;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len) !=
                0 ||
            soErr != 0) {
            err = addrStr + ": " +
                  std::strerror(soErr != 0 ? soErr : errno);
            ::close(fd);
            return -1;
        }
        rc = 0;
    }
    if (rc != 0) {
        err = addrStr + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (timeoutSeconds > 0) {
        // Hand the caller a blocking fd, same contract as connectUnix.
        const int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags < 0 ||
            ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
            err = std::string("fcntl: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
    }
    return fd;
}

bool
sendFrameBlocking(int fd, MsgType type,
                  const std::vector<std::uint8_t> &body)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, body);
    return writeFull(fd, frame.data(), frame.size());
}

bool
recvFrameBlocking(int fd, MsgType &type,
                  std::vector<std::uint8_t> &body)
{
    std::uint8_t header[8];
    if (!readFull(fd, header, sizeof header))
        return false;
    const std::uint32_t len = loadU32(header);
    const std::uint32_t crc = loadU32(header + 4);
    if (len == 0 || len > kMaxFrameBytes)
        return false;
    std::vector<std::uint8_t> payload(len);
    if (!readFull(fd, payload.data(), len))
        return false;
    if (crc32(payload.data(), len) != crc)
        return false;
    type = static_cast<MsgType>(payload[0]);
    body.assign(payload.begin() + 1, payload.end());
    return true;
}

namespace
{

/** RAII O_NONBLOCK toggle: deadline I/O needs a non-blocking fd so a
 *  half-open peer can't wedge a single read() past the deadline. */
class NonBlockScope
{
  public:
    explicit NonBlockScope(int fd) : fd_(fd)
    {
        flags_ = ::fcntl(fd, F_GETFL, 0);
        ok_ = flags_ >= 0 &&
              ::fcntl(fd, F_SETFL, flags_ | O_NONBLOCK) == 0;
    }
    ~NonBlockScope()
    {
        if (ok_)
            ::fcntl(fd_, F_SETFL, flags_);
    }
    bool ok() const { return ok_; }

  private:
    int fd_;
    int flags_ = 0;
    bool ok_ = false;
};

bool
waitFd(int fd, short events, double deadline)
{
    for (;;) {
        const double left = deadline - monoNow();
        if (left <= 0)
            return false;
        pollfd p{fd, events, 0};
        const int pr = ::poll(&p, 1,
                              static_cast<int>(left * 1000) + 1);
        if (pr > 0)
            return true;
        if (pr < 0 && errno != EINTR)
            return false;
    }
}

bool
readFullDeadline(int fd, std::uint8_t *buf, std::size_t n,
                 double deadline)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = readRetry(fd, buf + got, n - got);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0)
            return false; // EOF
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return false;
        if (!waitFd(fd, POLLIN, deadline))
            return false;
    }
    return true;
}

bool
writeFullDeadline(int fd, const std::uint8_t *buf, std::size_t n,
                  double deadline)
{
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w = writeRetry(fd, buf + sent, n - sent);
        if (w > 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
            return false;
        if (!waitFd(fd, POLLOUT, deadline))
            return false;
    }
    return true;
}

} // namespace

bool
sendFrameDeadline(int fd, MsgType type,
                  const std::vector<std::uint8_t> &body,
                  double timeoutSeconds)
{
    if (timeoutSeconds <= 0)
        return sendFrameBlocking(fd, type, body);
    NonBlockScope nb(fd);
    if (!nb.ok())
        return false;
    const std::vector<std::uint8_t> frame = encodeFrame(type, body);
    return writeFullDeadline(fd, frame.data(), frame.size(),
                             monoNow() + timeoutSeconds);
}

bool
recvFrameDeadline(int fd, MsgType &type,
                  std::vector<std::uint8_t> &body,
                  double timeoutSeconds)
{
    if (timeoutSeconds <= 0)
        return recvFrameBlocking(fd, type, body);
    NonBlockScope nb(fd);
    if (!nb.ok())
        return false;
    const double deadline = monoNow() + timeoutSeconds;
    std::uint8_t header[8];
    if (!readFullDeadline(fd, header, sizeof header, deadline))
        return false;
    const std::uint32_t len = loadU32(header);
    const std::uint32_t crc = loadU32(header + 4);
    if (len == 0 || len > kMaxFrameBytes)
        return false;
    std::vector<std::uint8_t> payload(len);
    if (!readFullDeadline(fd, payload.data(), len, deadline))
        return false;
    if (crc32(payload.data(), len) != crc)
        return false;
    type = static_cast<MsgType>(payload[0]);
    body.assign(payload.begin() + 1, payload.end());
    return true;
}

} // namespace neo
