/**
 * @file
 * Wire protocol for the distributed verification service.
 *
 * Every byte that crosses a socket in the service — client requests to
 * the coordinator, coordinator control traffic to workers, and the
 * state batches workers route to the shard owner — travels in one
 * frame format: [u32 length][u32 crc][u8 type + body]. The length
 * covers type + body, the CRC (the checkpoint module's zlib
 * polynomial) covers the same bytes, and bodies reuse the
 * little-endian SnapshotWriter/SnapshotReader codec, so a frame torn
 * by a dying peer is detected exactly like a torn checkpoint: by
 * construction, never by luck.
 *
 * Channels are non-blocking with explicit out-buffers. Workers form a
 * full mesh and two of them can easily fill each other's socket
 * buffers simultaneously; blocking writes would deadlock that cycle,
 * so a Channel never blocks — it queues, and the owner's poll() loop
 * drains when the peer can accept more.
 *
 * The same frames travel over unix sockets (single box) and TCP
 * (multi-box pools). TCP adds the failure modes a local socketpair
 * never shows — half-open peers, severed links, bytes corrupted by a
 * proxy — so channels grow write-stall deadlines and clients grow
 * connect/read deadlines; the CRC framing converts any byte-level
 * damage into a latched link failure rather than a misparsed message.
 */

#ifndef NEO_VERIF_SERVICE_WIRE_HPP
#define NEO_VERIF_SERVICE_WIRE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "verif/checkpoint.hpp"

namespace neo
{

/** Frame types. Numbering is grouped by direction so a stray frame on
 *  the wrong link is recognizably bogus, not misinterpreted. */
enum class MsgType : std::uint8_t
{
    // client -> coordinator
    ReqSubmit = 1,
    ReqStatus = 2,
    ReqCancel = 3,
    ReqDrain = 4,
    ReqWait = 5,
    // coordinator -> client
    RspSubmit = 16,
    RspStatus = 17,
    RspOk = 18,
    RspErr = 19,
    RspResult = 20,
    RspProgress = 21,
    // coordinator -> worker
    Ping = 32,
    CkptWrite = 33,
    Finish = 34,
    Stop = 35,
    Assign = 36, // coordinator -> pool agent: run this attempt slot
    Start = 37,  // barrier release once every slot has said Hello
    // worker -> coordinator
    Pong = 48,
    CkptDone = 49,
    Final = 50,
    Violation = 51,
    Hello = 52,    // TCP worker joins its attempt (job id + nonce)
    JoinPool = 53, // pool agent offers capacity
    // worker <-> worker
    States = 64,
    // worker -> coordinator -> worker (TCP star relay)
    StatesTo = 65,
};

/** Upper bound on a frame body; anything larger is a corrupt length
 *  field, not a real message (state batches are far smaller). */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** RspProgress phase byte for a job parked between attempts (retry
 *  backoff). Values 0..3 are the coordinator's live-attempt phases
 *  (run/quiesce/checkpoint/finish); this one is synthetic — emitted
 *  so a --wait client's read deadline stays fed while no attempt
 *  exists to tick ping rounds. */
inline constexpr std::uint8_t kProgressPhaseBackoff = 4;

/** String helpers over the snapshot codec (u32 length + bytes). */
void putString(SnapshotWriter &w, const std::string &s);
std::string getString(SnapshotReader &r);

/** Serialize one frame (header + CRC + type + body). */
std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::vector<std::uint8_t>
                                          &body);

/**
 * Incremental frame decoder: feed raw socket bytes, take complete
 * frames out. A length or CRC violation latches corrupt() — the link
 * is unusable after that (framing is lost), so owners treat it as a
 * peer failure.
 */
class FrameReader
{
  public:
    void feed(const std::uint8_t *data, std::size_t n);
    /** Pop the next complete frame; false when none is buffered. */
    bool next(MsgType &type, std::vector<std::uint8_t> &body);
    bool corrupt() const { return corrupt_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool corrupt_ = false;
};

/**
 * One non-blocking connection: queued outgoing frames plus the
 * incremental reader for incoming ones. The owner polls fd() for
 * POLLIN always and POLLOUT while wantsWrite().
 */
class Channel
{
  public:
    Channel() = default;
    explicit Channel(int fd) : fd_(fd) {}
    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;
    Channel(Channel &&o) noexcept { *this = std::move(o); }
    Channel &operator=(Channel &&o) noexcept;
    ~Channel() { close(); }

    int fd() const { return fd_; }
    bool open() const { return fd_ >= 0 && !failed_; }
    bool failed() const { return failed_; }
    void close();

    void queueFrame(MsgType type,
                    const std::vector<std::uint8_t> &body);
    bool wantsWrite() const { return outPos_ < out_.size(); }
    std::size_t outPending() const { return out_.size() - outPos_; }
    /** Total bytes ever drained to the socket (stall detection). */
    std::uint64_t flushedTotal() const { return flushedTotal_; }

    /**
     * Write-deadline supervision: true once the out-buffer has been
     * non-empty for longer than @p limitSeconds with zero bytes
     * drained — the peer has stopped reading. The owner decides what
     * that means (fail the attempt, drop the client). Any drain
     * progress or an empty buffer resets the clock. @p now is the
     * caller's monotonic clock.
     */
    bool writeStalled(double now, double limitSeconds);

    /** Drain the out-buffer as far as the socket accepts (EAGAIN
     *  stops, EPIPE/reset fails the channel). */
    void flush();
    /** Pull whatever the socket has buffered into the frame reader;
     *  EOF or error fails the channel. */
    void readSome();
    bool next(MsgType &type, std::vector<std::uint8_t> &body);

  private:
    int fd_ = -1;
    bool failed_ = false;
    std::vector<std::uint8_t> out_;
    std::size_t outPos_ = 0;
    std::uint64_t flushedTotal_ = 0;
    std::uint64_t stallFlushedMark_ = 0;
    double stallSince_ = 0.0;
    FrameReader in_;
};

/** Set O_NONBLOCK; @return false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Bind + listen on a unix stream socket at @p path. A stale socket
 * file from a SIGKILLed coordinator is detected by probing it with a
 * connect: refusal means nobody is home and the file is unlinked and
 * rebound (crash-only restart); an accepted probe means a live
 * coordinator already serves here, which is an error.
 * @return listening fd, or -1 with @p err set.
 */
int listenUnix(const std::string &path, std::string &err);

/** Connect to a unix stream socket; -1 with @p err on failure. */
int connectUnix(const std::string &path, std::string &err);

/** True when @p addr names a TCP endpoint (host:port) rather than a
 *  unix socket path. Paths never contain ':'; TCP addresses must. */
bool looksLikeTcpAddress(const std::string &addr);

/** Split "host:port" (host may be empty → 0.0.0.0 for listen,
 *  127.0.0.1 for connect). @return false with @p err on bad input. */
bool parseHostPort(const std::string &addr, std::string &host,
                   std::uint16_t &port, std::string &err);

/**
 * Bind + listen on a TCP endpoint "host:port" with SO_REUSEADDR.
 * Port 0 asks the kernel for a free port; @p bound (optional) receives
 * the resolved "host:port" either way so callers can publish it.
 * @return listening fd, or -1 with @p err set.
 */
int listenTcp(const std::string &addr, std::string &err,
              std::string *bound = nullptr);

/**
 * Connect to "host:port". With @p timeoutSeconds > 0 the connect is
 * attempted non-blocking and abandoned after the deadline (a black
 * hole or dead host fails in bounded time); the returned fd is
 * blocking. @return -1 with @p err on failure or timeout.
 */
int connectTcp(const std::string &addr, std::string &err,
               double timeoutSeconds = 0.0);

/** Blocking frame send on a blocking fd (client side). */
bool sendFrameBlocking(int fd, MsgType type,
                       const std::vector<std::uint8_t> &body);
/** Blocking frame receive; false on EOF, error or corruption. */
bool recvFrameBlocking(int fd, MsgType &type,
                       std::vector<std::uint8_t> &body);

/**
 * Deadline-bounded frame exchange for clients talking to a possibly
 * hung or half-open coordinator. Each call completes within roughly
 * @p timeoutSeconds or reports failure; a timeout poisons nothing —
 * the caller closes the fd and exits with the service-unavailable
 * code. @p timeoutSeconds <= 0 means no deadline (blocking).
 */
bool sendFrameDeadline(int fd, MsgType type,
                       const std::vector<std::uint8_t> &body,
                       double timeoutSeconds);
bool recvFrameDeadline(int fd, MsgType &type,
                       std::vector<std::uint8_t> &body,
                       double timeoutSeconds);

} // namespace neo

#endif // NEO_VERIF_SERVICE_WIRE_HPP
