/**
 * @file
 * Wire protocol for the distributed verification service.
 *
 * Every byte that crosses a socket in the service — client requests to
 * the coordinator, coordinator control traffic to workers, and the
 * state batches workers route to the shard owner — travels in one
 * frame format: [u32 length][u32 crc][u8 type + body]. The length
 * covers type + body, the CRC (the checkpoint module's zlib
 * polynomial) covers the same bytes, and bodies reuse the
 * little-endian SnapshotWriter/SnapshotReader codec, so a frame torn
 * by a dying peer is detected exactly like a torn checkpoint: by
 * construction, never by luck.
 *
 * Channels are non-blocking with explicit out-buffers. Workers form a
 * full mesh and two of them can easily fill each other's socket
 * buffers simultaneously; blocking writes would deadlock that cycle,
 * so a Channel never blocks — it queues, and the owner's poll() loop
 * drains when the peer can accept more.
 */

#ifndef NEO_VERIF_SERVICE_WIRE_HPP
#define NEO_VERIF_SERVICE_WIRE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "verif/checkpoint.hpp"

namespace neo
{

/** Frame types. Numbering is grouped by direction so a stray frame on
 *  the wrong link is recognizably bogus, not misinterpreted. */
enum class MsgType : std::uint8_t
{
    // client -> coordinator
    ReqSubmit = 1,
    ReqStatus = 2,
    ReqCancel = 3,
    ReqDrain = 4,
    ReqWait = 5,
    // coordinator -> client
    RspSubmit = 16,
    RspStatus = 17,
    RspOk = 18,
    RspErr = 19,
    RspResult = 20,
    // coordinator -> worker
    Ping = 32,
    CkptWrite = 33,
    Finish = 34,
    Stop = 35,
    // worker -> coordinator
    Pong = 48,
    CkptDone = 49,
    Final = 50,
    Violation = 51,
    // worker <-> worker
    States = 64,
};

/** Upper bound on a frame body; anything larger is a corrupt length
 *  field, not a real message (state batches are far smaller). */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** String helpers over the snapshot codec (u32 length + bytes). */
void putString(SnapshotWriter &w, const std::string &s);
std::string getString(SnapshotReader &r);

/** Serialize one frame (header + CRC + type + body). */
std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::vector<std::uint8_t>
                                          &body);

/**
 * Incremental frame decoder: feed raw socket bytes, take complete
 * frames out. A length or CRC violation latches corrupt() — the link
 * is unusable after that (framing is lost), so owners treat it as a
 * peer failure.
 */
class FrameReader
{
  public:
    void feed(const std::uint8_t *data, std::size_t n);
    /** Pop the next complete frame; false when none is buffered. */
    bool next(MsgType &type, std::vector<std::uint8_t> &body);
    bool corrupt() const { return corrupt_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool corrupt_ = false;
};

/**
 * One non-blocking connection: queued outgoing frames plus the
 * incremental reader for incoming ones. The owner polls fd() for
 * POLLIN always and POLLOUT while wantsWrite().
 */
class Channel
{
  public:
    Channel() = default;
    explicit Channel(int fd) : fd_(fd) {}
    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;
    Channel(Channel &&o) noexcept { *this = std::move(o); }
    Channel &operator=(Channel &&o) noexcept;
    ~Channel() { close(); }

    int fd() const { return fd_; }
    bool open() const { return fd_ >= 0 && !failed_; }
    bool failed() const { return failed_; }
    void close();

    void queueFrame(MsgType type,
                    const std::vector<std::uint8_t> &body);
    bool wantsWrite() const { return outPos_ < out_.size(); }
    std::size_t outPending() const { return out_.size() - outPos_; }

    /** Drain the out-buffer as far as the socket accepts (EAGAIN
     *  stops, EPIPE/reset fails the channel). */
    void flush();
    /** Pull whatever the socket has buffered into the frame reader;
     *  EOF or error fails the channel. */
    void readSome();
    bool next(MsgType &type, std::vector<std::uint8_t> &body);

  private:
    int fd_ = -1;
    bool failed_ = false;
    std::vector<std::uint8_t> out_;
    std::size_t outPos_ = 0;
    FrameReader in_;
};

/** Set O_NONBLOCK; @return false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Bind + listen on a unix stream socket at @p path. A stale socket
 * file from a SIGKILLed coordinator is detected by probing it with a
 * connect: refusal means nobody is home and the file is unlinked and
 * rebound (crash-only restart); an accepted probe means a live
 * coordinator already serves here, which is an error.
 * @return listening fd, or -1 with @p err set.
 */
int listenUnix(const std::string &path, std::string &err);

/** Connect to a unix stream socket; -1 with @p err on failure. */
int connectUnix(const std::string &path, std::string &err);

/** Blocking frame send on a blocking fd (client side). */
bool sendFrameBlocking(int fd, MsgType type,
                       const std::vector<std::uint8_t> &body);
/** Blocking frame receive; false on EOF, error or corruption. */
bool recvFrameBlocking(int fd, MsgType &type,
                       std::vector<std::uint8_t> &body);

} // namespace neo

#endif // NEO_VERIF_SERVICE_WIRE_HPP
