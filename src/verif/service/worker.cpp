#include "worker.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "sim/logging.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/models/mutants.hpp"
#include "verif/service/wire.hpp"
#include "verif/state_store.hpp"

namespace neo
{

using neo::verif::CompositionMethod;
using neo::verif::Mutant;
using neo::verif::VerifFeatures;

TransitionSystem
buildJobModel(const JobSpec &spec, ModelShape &shape, std::string &err)
{
    err.clear();
    if (!spec.mutant.empty()) {
        const Mutant *m = neo::verif::findMutant(spec.mutant);
        if (m == nullptr) {
            err = "unknown mutant " + spec.mutant;
            return TransitionSystem();
        }
        return m->build(shape);
    }
    if (spec.features == "german")
        return neo::verif::buildGermanModel(spec.n, shape);

    VerifFeatures f;
    if (spec.features == "msi")
        f = VerifFeatures::baselineMSI();
    else if (spec.features == "msi-incl")
        f = VerifFeatures::inclusiveMSI();
    else if (spec.features == "neomesi")
        f = VerifFeatures::neoMESI();
    else if (spec.features == "moesi")
        f = VerifFeatures::withOwned();
    else if (spec.features == "nsmesi") {
        f = VerifFeatures::neoMESI();
        f.nonSiblingFwd = true;
    } else {
        err = "unknown feature set " + spec.features;
        return TransitionSystem();
    }

    CompositionMethod cm = CompositionMethod::Modified;
    if (spec.method == "none")
        cm = CompositionMethod::None;
    else if (spec.method == "original")
        cm = CompositionMethod::Original;
    else if (spec.method != "modified") {
        err = "unknown method " + spec.method;
        return TransitionSystem();
    }

    if (spec.system == "closed")
        return neo::verif::buildClosedModel(spec.n, f, shape);
    if (spec.system != "open") {
        err = "unknown system " + spec.system;
        return TransitionSystem();
    }
    return neo::verif::buildOpenModel(spec.n, f, cm, shape);
}

namespace
{

/** Successors per States frame: amortizes framing without letting a
 *  peer's backlog grow stale. */
constexpr std::uint32_t kStateBatch = 128;
/** States expanded between poll() rounds. */
constexpr unsigned kExpandBatch = 64;
/** Control-channel service interval during a resume load or a
 *  partition snapshot encode (records between pollControlOnce). */
constexpr std::uint64_t kLoadServiceStride = 65536;
/** Star-mode backpressure: once this many bytes sit undrained in the
 *  coordinator link's out-buffer, expansion stops until the relay
 *  catches up — a slow peer stalls this worker's batch stream, it
 *  never balloons memory. */
constexpr std::size_t kCtlHighWater = 4u << 20;
/** Star-mode link deadlines (floors; scaled by the heartbeat). */
constexpr double kIdleFloorSeconds = 15.0;
constexpr double kIdleHeartbeats = 10.0;
constexpr double kStallFloorSeconds = 10.0;
constexpr double kStallHeartbeats = 8.0;

double
monoNow()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

struct WorkerRt
{
    const WorkerConfig *cfg = nullptr;
    const TransitionSystem *ts = nullptr;
    const CompiledRules *rules = nullptr;
    std::size_t numVars = 0;
    std::uint64_t fingerprint = 0;

    StateStore *store = nullptr;
    std::deque<std::uint32_t> queue;

    Channel ctl;
    std::vector<Channel> peers;
    /** Per-peer pending States batch (raw concatenated states). */
    std::vector<std::vector<std::uint8_t>> batch;
    std::vector<std::uint32_t> batchCount;

    std::uint64_t transitions = 0;
    std::uint64_t invChecks = 0;
    std::uint64_t sentTotal = 0;
    std::uint64_t recvTotal = 0;
    std::uint64_t freshInterns = 0; ///< this attempt (crashAfter gate)

    /** TCP star topology: no peer mesh; foreign states ride the
     *  control channel as StatesTo frames the coordinator relays. */
    bool star = false;
    /** Last time any control frame arrived (star read deadline). */
    double lastCtlActivity = 0.0;
    /** StatesTo bodies parked during a snapshot encode or a resume
     *  load. Mid-encode, interning would invalidate the store
     *  pointers the encoder is iterating; mid-load, a relayed state
     *  the partition scan has not reached yet would intern as fresh
     *  and be expanded a second time, inflating the exact
     *  transition/invariant counts the manifests carry. */
    std::vector<std::vector<std::uint8_t>> deferred;

    bool paused = false;
    bool violated = false;
    /** Resume partitions are still being scanned: the store is
     *  partial, so the coordinator must not count this worker toward
     *  fixpoint or checkpoint stability (rides in every Pong). */
    bool loading = false;
    /** A partition snapshot encode is on the stack; guards against a
     *  re-entrant CkptWrite when the encode services the channel. */
    bool snapshotting = false;

    VState scratch;
};

void pollControlOnce(WorkerRt &rt, int timeoutMs);

void
flushBatch(WorkerRt &rt, unsigned peer)
{
    if (rt.batchCount[peer] == 0)
        return;
    SnapshotWriter w;
    if (rt.star) {
        // Star route: the coordinator relays this to worker `peer`.
        w.putU32(peer);
        w.putU32(rt.batchCount[peer]);
        w.putBytes(rt.batch[peer].data(), rt.batch[peer].size());
        rt.ctl.queueFrame(MsgType::StatesTo, w.take());
    } else {
        w.putU32(rt.batchCount[peer]);
        w.putBytes(rt.batch[peer].data(), rt.batch[peer].size());
        rt.peers[peer].queueFrame(MsgType::States, w.take());
    }
    rt.batch[peer].clear();
    rt.batchCount[peer] = 0;
}

void
flushAllBatches(WorkerRt &rt)
{
    for (unsigned p = 0; p < rt.peers.size(); ++p)
        flushBatch(rt, p);
}

void
reportViolation(WorkerRt &rt, const std::string &invariant,
                const VState &bad)
{
    rt.violated = true;
    rt.queue.clear();
    SnapshotWriter w;
    putString(w, invariant);
    putString(w, rt.ts->describe(bad));
    // The reporter's exact counters ride along: a violation can land
    // before the first pong round, and the verdict should not report
    // zeros just because no heartbeat completed yet.
    w.putU64(rt.store->size());
    w.putU64(rt.transitions);
    w.putU64(rt.invChecks);
    rt.ctl.queueFrame(MsgType::Violation, w.take());
}

/** Intern a state this worker owns; fresh states are invariant-
 *  checked, queued for expansion, and gated by the crash-injection
 *  hook. */
void
acceptOwn(WorkerRt &rt, const std::uint8_t *bytes, std::uint64_t hash)
{
    const auto [id, fresh] = rt.store->internHashed(bytes, hash);
    if (!fresh || rt.violated)
        return;
    std::memcpy(rt.scratch.data(), bytes, rt.numVars);
    for (const auto &inv : rt.ts->invariants()) {
        ++rt.invChecks;
        if (!inv.check(rt.scratch)) {
            reportViolation(rt, inv.name, rt.scratch);
            return;
        }
    }
    rt.queue.push_back(id);
    if (rt.cfg->spec.crashAfter != 0 &&
        ++rt.freshInterns >= rt.cfg->spec.crashAfter)
        ::_exit(kWorkerExitInjectedCrash); // injected fault: die hard
}

bool
outEmpty(const WorkerRt &rt)
{
    for (const auto &c : rt.batchCount)
        if (c != 0)
            return false;
    for (const auto &p : rt.peers)
        if (p.open() && p.wantsWrite())
            return false;
    // Star mode: batches queued on the coordinator link are in
    // flight too. (Σsent==Σrecv already refuses a fixpoint while any
    // batch is unreceived; this just keeps the pong honest.)
    if (rt.star && rt.ctl.wantsWrite())
        return false;
    return true;
}

void
sendPong(WorkerRt &rt, std::uint32_t seq)
{
    SnapshotWriter w;
    w.putU32(seq);
    w.putU8(rt.paused ? 1 : 0);
    w.putU8(rt.loading ? 1 : 0);
    w.putU8(outEmpty(rt) ? 1 : 0);
    w.putU64(rt.queue.size());
    w.putU64(rt.store->size());
    w.putU64(rt.transitions);
    w.putU64(rt.invChecks);
    w.putU64(rt.sentTotal);
    w.putU64(rt.recvTotal);
    rt.ctl.queueFrame(MsgType::Pong, w.take());
}

void
writePartition(WorkerRt &rt, std::uint64_t epoch)
{
    // The encode walks every stored state; on a large partition that
    // outlasts the coordinator's staleness limit, so keep answering
    // Pings while it runs. snapshotting guards the re-entrancy this
    // opens up (serviceControl must not start a second encode).
    rt.snapshotting = true;
    std::uint64_t sinceService = 0;
    auto maybeService = [&]() {
        if (++sinceService % kLoadServiceStride == 0)
            pollControlOnce(rt, 0);
    };

    ExploreSnapshotMeta meta;
    // Counters live in the journal's CKPT manifest, not here: after a
    // reshard the per-partition attribution is meaningless anyway.
    meta.elapsedSeconds = 0.0;
    meta.transitionsFired = 0;
    meta.ruleFires.assign(rt.ts->rules().size(), 0);
    meta.hasLinks = false;
    meta.numStates = rt.store->size();

    const std::string path = partitionSnapshotPath(
        rt.cfg->partDir, epoch, rt.cfg->index, rt.cfg->count);
    const auto payload = encodeExploreSnapshotStreamed(
        meta, rt.numVars,
        [&](std::uint64_t id) {
            maybeService();
            return rt.store->at(static_cast<std::uint32_t>(id));
        },
        [](std::uint64_t) { return ExploreSnapshot::Link{}; },
        rt.queue.size(),
        [&](std::uint64_t i) {
            maybeService();
            return std::pair<std::uint64_t, std::uint32_t>(
                rt.queue[static_cast<std::size_t>(i)], 0);
        });
    std::string err;
    const bool ok = writeSnapshotFile(path, SnapshotKind::Explore,
                                      rt.fingerprint, payload, err);
    rt.snapshotting = false;
    if (!ok)
        neo_warn("worker ", rt.cfg->index, ": partition snapshot: ",
                 err);
    SnapshotWriter w;
    w.putU64(epoch);
    w.putU8(ok ? 1 : 0);
    rt.ctl.queueFrame(MsgType::CkptDone, w.take());
}

void
sendFinalAndExit(WorkerRt &rt)
{
    SnapshotWriter w;
    w.putU64(rt.store->size());
    w.putU64(rt.transitions);
    w.putU64(rt.invChecks);
    rt.ctl.queueFrame(MsgType::Final, w.take());
    // Drain the control channel before dying; the fd is non-blocking,
    // so wait for writability explicitly.
    while (rt.ctl.open() && rt.ctl.wantsWrite()) {
        pollfd p{rt.ctl.fd(), POLLOUT, 0};
        if (::poll(&p, 1, 1000) < 0 && errno != EINTR)
            break;
        rt.ctl.flush();
        if (rt.ctl.failed())
            break;
    }
    ::_exit(0);
}

/** Accept one relayed StatesTo body (star mode). */
void
processStatesToBody(WorkerRt &rt,
                    const std::vector<std::uint8_t> &body)
{
    SnapshotReader r(body);
    const std::uint32_t dest = r.getU32();
    // A misrouted batch is a coordinator bug; dropping it here can
    // never fake a result — the global sent/recv sums stop balancing
    // and the attempt dies under the no-progress watchdog.
    if (dest != rt.cfg->index)
        return;
    const std::uint32_t count = r.getU32();
    for (std::uint32_t s = 0; s < count; ++s) {
        const std::uint8_t *bytes = r.viewBytes(rt.numVars);
        if (bytes == nullptr)
            break;
        ++rt.recvTotal;
        acceptOwn(rt, bytes, stateHash(bytes, rt.numVars));
    }
}

/** Accept the StatesTo bodies parked during a snapshot encode or a
 *  resume load, now that the store is whole and may grow again. */
void
drainDeferred(WorkerRt &rt)
{
    while (!rt.deferred.empty()) {
        std::vector<std::vector<std::uint8_t>> parked;
        parked.swap(rt.deferred);
        for (const auto &b : parked)
            processStatesToBody(rt, b);
    }
}

/** Handle every buffered control frame; exits the process on Stop,
 *  Finish or a dead coordinator. */
void
serviceControl(WorkerRt &rt)
{
    MsgType type;
    std::vector<std::uint8_t> body;
    while (rt.ctl.next(type, body)) {
        rt.lastCtlActivity = monoNow();
        SnapshotReader r(body);
        switch (type) {
          case MsgType::StatesTo:
              // Mid-load the park is a matter of correctness, not
              // just pointer stability: the partition scan interns
              // the visited image in file order, so a relayed state
              // that is already in the image (expanded before the
              // cut, counted in the manifest base) but not yet
              // scanned would intern as FRESH — invariant-checked,
              // queued, and expanded a second time, inflating
              // transitions/invChecks past the sequential reference.
              if (rt.snapshotting || rt.loading)
                  rt.deferred.push_back(body);
              else
                  processStatesToBody(rt, body);
              break;
          case MsgType::Ping: {
              const std::uint32_t seq = r.getU32();
              rt.paused = r.getU8() != 0;
              if (rt.paused)
                  flushAllBatches(rt);
              sendPong(rt, seq);
              break;
          }
          case MsgType::CkptWrite:
              // Mid-load the store is partial (a snapshot of it
              // would commit a truncated checkpoint); mid-snapshot a
              // second encode would recurse. A correct coordinator
              // sends neither (loading rides the pongs, the barrier
              // is once-per-epoch), so dropping is the safe answer:
              // the stalled barrier fails the attempt and retries
              // rather than committing garbage.
              if (rt.loading || rt.snapshotting) {
                  neo_warn("worker ", rt.cfg->index,
                           ": CkptWrite during ",
                           rt.loading ? "resume load" : "snapshot",
                           " dropped");
                  break;
              }
              writePartition(rt, r.getU64());
              drainDeferred(rt);
              break;
          case MsgType::Finish:
              // Same guard: obeying a Finish before the resume load
              // completes would report a partial store as the final
              // verdict. Drop it — a retry beats a false Verified.
              if (rt.loading || rt.snapshotting) {
                  neo_warn("worker ", rt.cfg->index,
                           ": Finish during ",
                           rt.loading ? "resume load" : "snapshot",
                           " dropped");
                  break;
              }
              sendFinalAndExit(rt); // does not return
              break;
          case MsgType::Stop:
              ::_exit(0);
          default:
              break; // stray frame: ignore
        }
    }
    if (rt.ctl.failed())
        // Coordinator gone: a worker never outlives it. Over TCP the
        // same EOF can also be a severed link; the distinct exit
        // code tells the two stories apart in logs.
        ::_exit(rt.star ? kWorkerExitLinkLost : 0);
}

void
pollControlOnce(WorkerRt &rt, int timeoutMs)
{
    pollfd p{rt.ctl.fd(),
             static_cast<short>(POLLIN |
                                (rt.ctl.wantsWrite() ? POLLOUT : 0)),
             0};
    const int rc = ::poll(&p, 1, timeoutMs);
    if (rc < 0 && errno != EINTR)
        ::_exit(kWorkerExitSetupFailed);
    if (rc <= 0)
        return;
    if (p.revents & (POLLIN | POLLHUP | POLLERR))
        rt.ctl.readSome();
    if (p.revents & POLLOUT)
        rt.ctl.flush();
    serviceControl(rt);
}

void
loadPartitions(WorkerRt &rt)
{
    const WorkerConfig &cfg = *rt.cfg;
    const unsigned W = cfg.count;
    std::uint64_t sinceService = 0;
    auto maybeService = [&]() {
        if (++sinceService % kLoadServiceStride == 0)
            pollControlOnce(rt, 0);
    };
    for (std::uint32_t part = 0; part < cfg.resumeParts; ++part) {
        const std::string path = partitionSnapshotPath(
            cfg.partDir, cfg.resumeEpoch, part, cfg.resumeParts);
        std::vector<std::uint8_t> payload;
        std::string err;
        if (!readSnapshotFile(path, SnapshotKind::Explore,
                              rt.fingerprint, payload, err)) {
            neo_warn("worker ", cfg.index, ": resume: ", err);
            ::_exit(kWorkerExitSetupFailed);
        }
        ExploreSnapshotMeta meta;
        const bool ok = decodeExploreSnapshotStreamed(
            payload, rt.numVars, rt.ts->rules().size(), meta,
            [](std::uint64_t) {},
            [&](std::uint64_t, const std::uint8_t *state) {
                // Reshard: keep only the states this worker owns
                // under the CURRENT W. Loaded states were already
                // counted (invariant checks included) in the
                // manifest base, so intern without re-counting.
                const std::uint64_t h = stateHash(state, rt.numVars);
                if (h % W == cfg.index)
                    rt.store->internHashed(state, h);
                maybeService();
            },
            [](std::uint64_t, const ExploreSnapshot::Link &) {},
            [&](std::uint64_t, std::uint32_t,
                const std::uint8_t *state) {
                // Frontier entries were interned by the pass above
                // (frontier states are part of the visited image);
                // the owner re-queues them for expansion.
                const std::uint64_t h = stateHash(state, rt.numVars);
                if (h % W == cfg.index) {
                    const auto [id, fresh] =
                        rt.store->internHashed(state, h);
                    (void)fresh;
                    rt.queue.push_back(id);
                }
                maybeService();
            },
            err);
        if (!ok) {
            neo_warn("worker ", cfg.index, ": resume: ", err);
            ::_exit(kWorkerExitSetupFailed);
        }
    }
}

void
expandOne(WorkerRt &rt, VState &cur, VState &succ)
{
    const std::uint32_t id = rt.queue.front();
    rt.queue.pop_front();
    std::memcpy(cur.data(), rt.store->at(id), rt.numVars);
    const CompiledRules &rules = *rt.rules;
    const auto &canon = rt.ts->canonicalizer();
    const unsigned W = rt.cfg->count;
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
        if (!rules.guard(ri, cur))
            continue;
        ++rt.transitions;
        succ = cur;
        rules.effect(ri, succ);
        if (canon)
            canon(succ);
        const std::uint64_t h = stateHash(succ.data(), rt.numVars);
        const unsigned owner = static_cast<unsigned>(h % W);
        if (owner == rt.cfg->index) {
            acceptOwn(rt, succ.data(), h);
            if (rt.violated)
                return;
        } else {
            auto &b = rt.batch[owner];
            b.insert(b.end(), succ.data(),
                     succ.data() + rt.numVars);
            ++rt.sentTotal;
            if (++rt.batchCount[owner] >= kStateBatch)
                flushBatch(rt, owner);
        }
    }
}

} // namespace

void
runWorkerProcess(const WorkerConfig &cfg, const WorkerEndpoints &eps)
{
    ignoreSigpipe();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    ModelShape shape;
    std::string err;
    TransitionSystem ts = buildJobModel(cfg.spec, shape, err);
    if (!err.empty()) {
        neo_warn("worker ", cfg.index, ": ", err);
        ::_exit(kWorkerExitSetupFailed);
    }
    const CompiledRules rules(ts);

    WorkerRt rt;
    rt.cfg = &cfg;
    rt.ts = &ts;
    rt.rules = &rules;
    rt.numVars = ts.numVars();
    rt.fingerprint = modelFingerprint(ts);
    rt.scratch.assign(rt.numVars, 0);

    ExploreLimits presize;
    presize.maxStates = cfg.spec.maxStates;
    StateStore store(rt.numVars,
                     explorePresizeHint(presize) /
                         std::max(1u, cfg.count));
    rt.store = &store;

    rt.star = !cfg.coordAddr.empty();
    rt.peers.resize(cfg.count);
    rt.batch.resize(cfg.count);
    rt.batchCount.assign(cfg.count, 0);
    if (rt.star) {
        // Dial the coordinator, authenticate this attempt slot, and
        // wait at the start barrier. Every step is deadline-bounded:
        // a half-open coordinator or a proxy that swallows the
        // handshake must fail this process in bounded time, not hang
        // it forever.
        const int fd = connectTcp(cfg.coordAddr, err, 10.0);
        if (fd < 0) {
            neo_warn("worker ", cfg.index, ": dial ", cfg.coordAddr,
                     ": ", err);
            ::_exit(kWorkerExitSetupFailed);
        }
        SnapshotWriter hw;
        hw.putU64(cfg.jobId);
        hw.putU64(cfg.nonce);
        hw.putU32(cfg.index);
        if (!sendFrameDeadline(fd, MsgType::Hello, hw.take(),
                               10.0)) {
            ::close(fd);
            ::_exit(kWorkerExitLinkLost);
        }
        MsgType t;
        std::vector<std::uint8_t> b;
        if (!recvFrameDeadline(fd, t, b, 30.0) ||
            t != MsgType::Start) {
            // Refused (stale nonce, dead attempt) or barrier never
            // released: remove ourselves, the coordinator decides
            // the attempt's fate independently.
            ::close(fd);
            ::_exit(kWorkerExitLinkLost);
        }
        setNonBlocking(fd);
        rt.ctl = Channel(fd);
    } else {
        rt.ctl = Channel(eps.control);
        setNonBlocking(eps.control);
        for (unsigned p = 0; p < cfg.count; ++p) {
            if (eps.peers[p] >= 0) {
                setNonBlocking(eps.peers[p]);
                rt.peers[p] = Channel(eps.peers[p]);
            }
        }
    }
    rt.lastCtlActivity = monoNow();

    if (cfg.resumeEpoch != 0) {
        // Pongs answered mid-load carry loading=1 so a peer-owned
        // scan (frozen store, empty queue) cannot satisfy the
        // coordinator's fixpoint or quiesce stability tests while
        // this store is still partial.
        rt.loading = true;
        loadPartitions(rt);
        rt.loading = false;
        // Batches relayed by faster-loading peers were parked: with
        // the visited image complete they dedup correctly now.
        drainDeferred(rt);
    } else {
        VState init = ts.initialState();
        if (ts.canonicalizer())
            ts.canonicalizer()(init);
        const std::uint64_t h = stateHash(init.data(), rt.numVars);
        if (h % cfg.count == cfg.index)
            acceptOwn(rt, init.data(), h);
    }

    VState cur(rt.numVars), succ(rt.numVars);
    std::vector<pollfd> pfds;
    std::vector<int> pfdPeer; // parallel: -1 = control
    MsgType type;
    std::vector<std::uint8_t> body;

    for (;;) {
        // Star backpressure: a full coordinator link pauses
        // expansion (the batches it would produce have nowhere
        // bounded to go) but keeps the worker responsive to control.
        const bool ctlFull =
            rt.star && rt.ctl.outPending() >= kCtlHighWater;
        const bool canExpand = !rt.paused && !rt.violated &&
                               !rt.queue.empty() && !ctlFull;
        if (!canExpand)
            flushAllBatches(rt); // going idle: nothing may linger

        pfds.clear();
        pfdPeer.clear();
        pfds.push_back(
            {rt.ctl.fd(),
             static_cast<short>(
                 POLLIN | (rt.ctl.wantsWrite() ? POLLOUT : 0)),
             0});
        pfdPeer.push_back(-1);
        for (unsigned p = 0; p < cfg.count; ++p) {
            if (!rt.peers[p].open())
                continue;
            pfds.push_back(
                {rt.peers[p].fd(),
                 static_cast<short>(
                     POLLIN |
                     (rt.peers[p].wantsWrite() ? POLLOUT : 0)),
                 0});
            pfdPeer.push_back(static_cast<int>(p));
        }

        // Star links need a finite timeout: the read deadline below
        // must fire even when the severed link delivers no events.
        const int rc = ::poll(pfds.data(), pfds.size(),
                              canExpand ? 0 : (rt.star ? 500 : -1));
        if (rc < 0 && errno != EINTR)
            ::_exit(kWorkerExitSetupFailed);

        for (std::size_t k = 0; rc > 0 && k < pfds.size(); ++k) {
            if (pfds[k].revents == 0)
                continue;
            Channel &ch = pfdPeer[k] < 0
                              ? rt.ctl
                              : rt.peers[static_cast<unsigned>(
                                    pfdPeer[k])];
            if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR))
                ch.readSome();
            if (pfds[k].revents & POLLOUT)
                ch.flush();
            if (pfdPeer[k] >= 0) {
                while (ch.next(type, body)) {
                    if (type != MsgType::States)
                        continue;
                    SnapshotReader r(body);
                    const std::uint32_t count = r.getU32();
                    for (std::uint32_t s = 0; s < count; ++s) {
                        const std::uint8_t *bytes =
                            r.viewBytes(rt.numVars);
                        if (bytes == nullptr)
                            break;
                        ++rt.recvTotal;
                        acceptOwn(rt, bytes,
                                  stateHash(bytes, rt.numVars));
                    }
                }
                if (ch.failed()) {
                    // A peer vanished. Do NOT die: at the fixpoint
                    // the Finish broadcast races peer exits, and the
                    // first finisher's EOF must not look fatal to the
                    // rest. The coordinator referees real deaths via
                    // waitpid; if this peer died mid-run, any state
                    // routed to it is dropped here, global sent !=
                    // recv can never re-balance, and no false
                    // fixpoint is possible before the coordinator
                    // kills the attempt.
                    ch.close();
                }
            }
        }

        serviceControl(rt); // may _exit (Stop/Finish/dead coordinator)

        if (rt.star) {
            // Read/write deadlines: a coordinator (or the path to
            // it) that goes silent, or stops draining our batches,
            // means this worker is exploring into the void — exit
            // and let the coordinator-side supervision fail the
            // attempt cleanly for retry.
            const double now = monoNow();
            if (now - rt.lastCtlActivity >
                std::max(kIdleFloorSeconds,
                         kIdleHeartbeats * cfg.heartbeatSeconds))
                ::_exit(kWorkerExitLinkLost);
            if (rt.ctl.writeStalled(
                    now, std::max(kStallFloorSeconds,
                                  kStallHeartbeats *
                                      cfg.heartbeatSeconds)))
                ::_exit(kWorkerExitLinkLost);
        }

        if (!rt.paused && !rt.violated &&
            !(rt.star && rt.ctl.outPending() >= kCtlHighWater)) {
            for (unsigned b = 0;
                 b < kExpandBatch && !rt.queue.empty(); ++b)
                expandOne(rt, cur, succ);
        }
    }
}

namespace
{

/** Sleep in interrupt-checkable slices. */
void
sleepRetry(double seconds)
{
    const double until = monoNow() + seconds;
    while (!interruptRequested() && monoNow() < until)
        ::poll(nullptr, 0, 100);
}

} // namespace

int
runJoinAgent(const JoinOptions &opts)
{
    ignoreSigpipe();
    installInterruptHandlers();
    bool announced = false;
    while (!interruptRequested()) {
        std::string err;
        const int fd = connectTcp(opts.coordAddr, err, 5.0);
        if (fd < 0) {
            if (!announced) {
                neo_warn("join ", opts.coordAddr, ": ", err,
                         " (retrying every ", opts.retrySeconds,
                         "s)");
                announced = true;
            }
            sleepRetry(opts.retrySeconds);
            continue;
        }
        announced = false;
        SnapshotWriter w;
        w.putU8(opts.stateDir.empty() ? 0 : 1);
        if (!sendFrameDeadline(fd, MsgType::JoinPool, w.take(),
                               5.0)) {
            ::close(fd);
            sleepRetry(opts.retrySeconds);
            continue;
        }
        neo_inform("joined pool at ", opts.coordAddr,
                   ", waiting for an assignment");

        setNonBlocking(fd);
        Channel ch(fd);
        MsgType type = MsgType::Stop;
        std::vector<std::uint8_t> body;
        bool assigned = false;
        // Park until Assign, EOF (coordinator restarted: rejoin), or
        // an interrupt. The 1s tick bounds interrupt latency.
        while (!interruptRequested() && !ch.failed()) {
            if (ch.next(type, body)) {
                assigned = type == MsgType::Assign;
                break;
            }
            pollfd p{ch.fd(), POLLIN, 0};
            const int rc = ::poll(&p, 1, 1000);
            if (rc < 0 && errno != EINTR)
                break;
            if (rc > 0 &&
                (p.revents & (POLLIN | POLLHUP | POLLERR)))
                ch.readSome();
        }
        if (!assigned) {
            ch.close();
            if (!interruptRequested())
                sleepRetry(opts.retrySeconds);
            continue;
        }

        SnapshotReader r(body);
        WorkerConfig cfg;
        cfg.jobId = r.getU64();
        cfg.nonce = r.getU64();
        cfg.index = r.getU32();
        cfg.count = r.getU32();
        cfg.heartbeatSeconds = r.getF64();
        cfg.resumeEpoch = r.getU64();
        cfg.resumeParts = r.getU32();
        const std::string coordDir = getString(r);
        if (!r.ok() || !JobSpec::decode(r, cfg.spec)) {
            neo_warn("malformed Assign frame; rejoining");
            ch.close();
            continue;
        }
        // The worker dials its own authenticated connection; the
        // pool link's job is done.
        ch.close();
        cfg.coordAddr = opts.coordAddr;
        cfg.partDir =
            opts.stateDir.empty() ? coordDir : opts.stateDir;
        neo_inform("assigned job ", cfg.jobId, " slot ", cfg.index,
                   "/", cfg.count, ": ", cfg.spec.summary());

        const pid_t pid = ::fork();
        if (pid < 0) {
            neo_warn("fork: ", std::strerror(errno));
            sleepRetry(opts.retrySeconds);
            continue;
        }
        if (pid == 0)
            runWorkerProcess(cfg, WorkerEndpoints()); // never returns

        int st = 0;
        for (;;) {
            const pid_t rc = ::waitpid(pid, &st, 0);
            if (rc == pid)
                break;
            if (rc < 0 && errno == EINTR) {
                if (interruptRequested()) {
                    ::kill(pid, SIGKILL);
                    ::waitpid(pid, &st, 0);
                    return kExitClean;
                }
                continue;
            }
            break;
        }
        if (WIFSIGNALED(st))
            neo_inform("worker for job ", cfg.jobId,
                       " killed by signal ", WTERMSIG(st),
                       "; rejoining the pool");
        else
            neo_inform("worker for job ", cfg.jobId,
                       " exited with status ", WEXITSTATUS(st),
                       "; rejoining the pool");
    }
    return kExitClean;
}

} // namespace neo
