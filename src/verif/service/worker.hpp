/**
 * @file
 * One sharded exploration worker of the verification service.
 *
 * A job's state space is partitioned by fingerprint: worker i of W
 * owns every canonical state whose stateHash() satisfies
 * `hash % W == i`. Each worker runs the plain BFS expansion loop over
 * its own partition and routes foreign successors to their owner over
 * a full mesh of socketpairs — the classic distributed-Murphi
 * decomposition, in-process-tree instead of cross-machine.
 *
 * Workers are crash-only leaf processes: forked per attempt, never
 * exec'd, terminated with _exit. They answer the coordinator's
 * heartbeat pings with their counters, pause for coordinated
 * checkpoint barriers, write their partition snapshot in the standard
 * explore-snapshot codec (so the format is shared with single-process
 * checkpoints), and die silently when the control channel closes —
 * a worker must never outlive its coordinator.
 */

#ifndef NEO_VERIF_SERVICE_WORKER_HPP
#define NEO_VERIF_SERVICE_WORKER_HPP

#include <string>
#include <vector>

#include "verif/parametric.hpp"
#include "verif/service/job_queue.hpp"
#include "verif/transition_system.hpp"

namespace neo
{

/** Inherited file descriptors of a freshly forked worker. Empty (all
 *  -1) in TCP star mode, where the worker dials the coordinator. */
struct WorkerEndpoints
{
    /** Coordinator control socket (pings, barriers, verdicts). */
    int control = -1;
    /** Mesh sockets, indexed by peer worker; peers[self] == -1. */
    std::vector<int> peers;
};

struct WorkerConfig
{
    unsigned index = 0; ///< this worker's shard
    unsigned count = 1; ///< workers in the attempt (W)
    JobSpec spec;
    /** Directory holding partition snapshots (the service state dir). */
    std::string partDir;
    /** Nonzero: load this committed epoch's partition files before
     *  exploring. The epoch may have been written by a DIFFERENT
     *  worker count — each worker reads all resumeParts files and
     *  keeps only the states it owns under the new W (reshard). */
    std::uint64_t resumeEpoch = 0;
    std::uint32_t resumeParts = 0;

    /** TCP star mode: non-empty makes the worker dial this address,
     *  authenticate with Hello{jobId, nonce, index}, wait for the
     *  Start barrier, and route foreign states through the
     *  coordinator relay (StatesTo) instead of a peer mesh. */
    std::string coordAddr;
    std::uint64_t jobId = 0;
    /** Per-attempt nonce: a Hello from a stale attempt (pre-retry
     *  fork, delayed proxy bytes) authenticates against the wrong
     *  epoch and is refused, so it can never pollute the successor
     *  attempt's fixpoint accounting. */
    std::uint64_t nonce = 0;
    /** Coordinator heartbeat, sizing the worker-side read deadline:
     *  a link silent for ~10 heartbeats means the coordinator (or
     *  the path to it) is gone, and the worker exits rather than
     *  explore into the void. */
    double heartbeatSeconds = 1.0;
};

/** Pool agent (neoverify --join <host:port>): offers this box to the
 *  coordinator, forks one worker per Assign, reconnects after each.
 *  Runs until interrupted. */
struct JoinOptions
{
    std::string coordAddr;
    /** Local partition directory. Non-empty advertises resume
     *  capability (canResume) — only meaningful when it names the
     *  same storage the coordinator's state dir lives on. */
    std::string stateDir;
    /** Reconnect delay after a refused/failed connection. */
    double retrySeconds = 1.0;
};

/** @return a process exit code (clean on interrupt). */
int runJoinAgent(const JoinOptions &opts);

/** Build the model a JobSpec names. @p err non-empty (and an empty
 *  system returned) when the spec is unknown — the coordinator calls
 *  this at submit time so bad specs are rejected at the door. */
TransitionSystem buildJobModel(const JobSpec &spec, ModelShape &shape,
                               std::string &err);

/** Worker process body; never returns (always _exit). */
[[noreturn]] void runWorkerProcess(const WorkerConfig &cfg,
                                   const WorkerEndpoints &eps);

/** Worker _exit codes the coordinator distinguishes in logs. */
inline constexpr int kWorkerExitInjectedCrash = 113;
inline constexpr int kWorkerExitSetupFailed = 114;
/** TCP link to the coordinator went silent, stalled, or corrupted:
 *  the worker removes itself rather than explore into the void (the
 *  coordinator independently fails the attempt from its side). */
inline constexpr int kWorkerExitLinkLost = 115;

} // namespace neo

#endif // NEO_VERIF_SERVICE_WORKER_HPP
