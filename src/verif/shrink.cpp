#include "shrink.hpp"

#include <algorithm>

#include "verif/explorer.hpp"
#include "verif/state_store.hpp"

namespace neo
{

namespace
{

/**
 * Replay @p trace step by step; @return the index of the first step
 * after which @p inv fails, or -1 when a guard is false mid-trace or
 * the invariant never fails. Counts each call in @p replays.
 */
long
violatesAt(const TransitionSystem &ts,
           const TransitionSystem::Check &inv,
           const std::vector<std::uint32_t> &trace,
           std::uint64_t &replays)
{
    ++replays;
    const auto &rules = ts.rules();
    const auto &canon = ts.canonicalizer();
    VState s = ts.initialState();
    if (canon)
        canon(s);
    for (std::size_t k = 0; k < trace.size(); ++k) {
        const std::uint32_t idx = trace[k];
        if (idx >= rules.size() || !rules[idx].guard(s))
            return -1;
        rules[idx].effect(s);
        if (canon)
            canon(s);
        if (!inv(s))
            return static_cast<long>(k);
    }
    return -1;
}

} // namespace

ShrinkResult
shrinkTrace(const TransitionSystem &ts,
            const std::vector<std::uint32_t> &trace,
            const std::string &invariantName,
            std::uint64_t searchBudget,
            const StoreTierOptions &store)
{
    if (store.tier == StoreTier::Compact)
        neo_fatal("shrinkTrace: --compact-hashes stores fingerprints "
                  "only; shrinking needs exact state identity — rerun "
                  "without hash compaction to shrink");
    ShrinkResult result;
    result.rawLength = trace.size();
    result.violatedInvariant = invariantName;

    const TransitionSystem::Check *inv = nullptr;
    for (const auto &i : ts.invariants()) {
        if (i.name == invariantName)
            inv = &i.check;
    }
    if (!inv)
        neo_fatal("shrinkTrace: unknown invariant ", invariantName);

    std::vector<std::uint32_t> cur = trace;
    {
        const long v = violatesAt(ts, *inv, cur, result.replays);
        if (v < 0)
            neo_fatal("shrinkTrace: input trace does not reproduce a ",
                      invariantName, " violation");
        cur.resize(static_cast<std::size_t>(v) + 1);
    }

    // Phase 1 — cycle elimination. A random walk's dominant
    // redundancy is loops: the walk revisits a canonical state and
    // wanders on. Splicing out the firings between two visits of the
    // same state is ALWAYS a valid replay (the guard of the next kept
    // step held at that very state), and leaves the suffix — hence
    // the violation — untouched. Repeat until all intermediate states
    // are distinct.
    auto eliminate_cycles = [&]() {
        for (;;) {
            ++result.replays;
            const auto &rules = ts.rules();
            const auto &canon = ts.canonicalizer();
            // Interned dedup: states are appended once per step, so
            // an arena id IS the trace position of its first visit.
            StateStore seen(ts.numVars(), 0, nullptr, store);
            VState s = ts.initialState();
            if (canon)
                canon(s);
            seen.intern(s); // state index k = state after step k-1
            bool spliced = false;
            for (std::size_t k = 0; k < cur.size(); ++k) {
                rules[cur[k]].effect(s);
                if (canon)
                    canon(s);
                const auto [firstVisit, fresh] = seen.intern(s);
                if (!fresh) {
                    // States firstVisit and k+1 coincide: drop the
                    // firings between them and rescan.
                    cur.erase(cur.begin() +
                                  static_cast<long>(firstVisit),
                              cur.begin() + static_cast<long>(k + 1));
                    spliced = true;
                    break;
                }
            }
            if (!spliced)
                return;
        }
    };
    eliminate_cycles();

    // Phase 2 — suffix re-routing. Deletion alone cannot fix a walk
    // that reached the violation the long way round: the remaining
    // steps are pairwise guard-entangled (every subsequence breaks a
    // guard) yet a completely different, much shorter path exists.
    // From successive trace states, run a breadth-first search for ANY
    // state violating the target invariant, depth-bounded to strictly
    // beat the current completion and node-bounded by the caller's
    // budget so the phase stays local on instances too large to
    // exhaust. A completed (non-exhausted) search from state i proves
    // no shorter completion exists from ANY later trace state either —
    // their completions, prefixed with the walk steps that reach them,
    // are completions from state i too — so the trace is then
    // length-minimal past i and we stop.
    struct Bridge
    {
        bool found = false;
        bool exhausted = false;
        std::vector<std::uint32_t> path;
    };
    auto bridge_search = [&](const VState &start,
                             std::size_t maxDepth) -> Bridge {
        Bridge out;
        if (maxDepth == 0)
            return out;
        const auto &rules = ts.rules();
        const auto &canon = ts.canonicalizer();
        // States live in the interning store; a violating state
        // returns before anything else is interned, so arena ids and
        // the parent/depth flat arrays stay aligned.
        StateStore seen(ts.numVars(), 0, nullptr, store);
        seen.intern(start);
        std::vector<long> parentOf{-1};
        std::vector<std::uint32_t> ruleInto{0};
        std::vector<std::uint32_t> depthOf{0};
        VState base;
        VState nxt;
        for (std::size_t head = 0; head < parentOf.size(); ++head) {
            if (depthOf[head] >= maxDepth)
                continue;
            if (result.searchStates >= searchBudget) {
                out.exhausted = true;
                return out;
            }
            seen.copyTo(static_cast<std::uint32_t>(head), base);
            for (std::uint32_t r = 0;
                 r < static_cast<std::uint32_t>(rules.size()); ++r) {
                if (!rules[r].guard(base))
                    continue;
                nxt = base;
                rules[r].effect(nxt);
                if (canon)
                    canon(nxt);
                ++result.searchStates;
                if (!seen.intern(nxt).second)
                    continue;
                if (!(*inv)(nxt)) {
                    out.found = true;
                    out.path.push_back(r);
                    for (long p = static_cast<long>(head);
                         parentOf[p] >= 0; p = parentOf[p])
                        out.path.push_back(ruleInto[p]);
                    std::reverse(out.path.begin(), out.path.end());
                    return out;
                }
                parentOf.push_back(static_cast<long>(head));
                ruleInto.push_back(r);
                depthOf.push_back(depthOf[head] + 1);
            }
        }
        return out;
    };
    {
        const auto &rules = ts.rules();
        const auto &canon = ts.canonicalizer();
        std::vector<VState> along;
        VState s = ts.initialState();
        if (canon)
            canon(s);
        along.push_back(s);
        for (const std::uint32_t r : cur) {
            rules[r].effect(s);
            if (canon)
                canon(s);
            along.push_back(s);
        }
        std::size_t i = 0;
        while (i < cur.size()) {
            const Bridge b = bridge_search(along[i], cur.size() - i - 1);
            if (b.found) {
                // Shortest completion from state i within the explored
                // region; subpaths of shortest paths are shortest, so
                // no later splice can improve on it.
                cur.resize(i);
                cur.insert(cur.end(), b.path.begin(), b.path.end());
                break;
            }
            if (!b.exhausted)
                break; // proven minimal past i
            // Budget ran dry: retry closer to the violation, where the
            // bounded search covers a larger fraction of the subproblem.
            i += std::max<std::size_t>(1, (cur.size() - i) / 4);
        }
    }

    // Phase 3 — window deletion with halving window size; every
    // accepted candidate is immediately re-truncated at its first
    // violation.
    auto reduce_pass = [&](std::size_t chunk) -> bool {
        bool any = false;
        std::size_t i = 0;
        while (i < cur.size()) {
            std::vector<std::uint32_t> cand(cur.begin(),
                                            cur.begin() +
                                                static_cast<long>(i));
            const std::size_t j = std::min(cur.size(), i + chunk);
            cand.insert(cand.end(),
                        cur.begin() + static_cast<long>(j), cur.end());
            const long v = violatesAt(ts, *inv, cand, result.replays);
            if (v >= 0) {
                cand.resize(static_cast<std::size_t>(v) + 1);
                cur = std::move(cand);
                any = true; // rescan the same position
            } else {
                i += chunk;
            }
        }
        return any;
    };

    std::size_t chunk = std::max<std::size_t>(cur.size() / 2, 1);
    for (;;) {
        const bool any = reduce_pass(chunk);
        if (chunk > 1)
            chunk /= 2;
        else if (!any)
            break;
    }

    result.trace = cur;
    result.shrunkLength = cur.size();
    result.traceNames.reserve(cur.size());
    for (const std::uint32_t r : cur)
        result.traceNames.push_back(ts.rules()[r].name);

    const ReplayResult rr = replayTrace(ts, result.trace);
    result.badState = ts.describe(rr.finalState);
    return result;
}

} // namespace neo
