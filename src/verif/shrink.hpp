/**
 * @file
 * Delta-debugging trace shrinker for random-walk counterexamples.
 *
 * A raw walk trace is typically hundreds of rule firings long; almost
 * all of them are irrelevant to the violation. The shrinker reduces a
 * violating trace to a locally minimal one by (1) truncating at the
 * first step where the target invariant already fails, (2) splicing
 * out cycles (firings between two visits of the same canonical
 * state), (3) re-routing the suffix through a budget-bounded
 * breadth-first search for a strictly shorter completion, and (4)
 * repeatedly deleting windows of firings — halving the window size
 * down to single steps — keeping any candidate that still replays
 * validly (every guard holds in sequence) and still violates the SAME
 * invariant. The result is 1-minimal: removing any single remaining
 * firing either makes a later guard false or loses the violation.
 */

#ifndef NEO_VERIF_SHRINK_HPP
#define NEO_VERIF_SHRINK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "verif/random_walk.hpp"
#include "verif/state_store.hpp"
#include "verif/transition_system.hpp"

namespace neo
{

struct ShrinkResult
{
    /** The minimized trace (rule indices, replayable). */
    std::vector<std::uint32_t> trace;
    /** The same trace as rule names. */
    std::vector<std::string> traceNames;
    /** Invariant the shrunk trace violates (== the input invariant). */
    std::string violatedInvariant;
    /** Violating state reached by the shrunk trace. */
    std::string badState;
    std::size_t rawLength = 0;
    std::size_t shrunkLength = 0;
    /** Replay attempts spent shrinking (the shrinker's cost unit). */
    std::uint64_t replays = 0;
    /** States expanded by the bounded re-routing searches. */
    std::uint64_t searchStates = 0;
};

/**
 * Shrink @p trace, which must replay to a violation of
 * @p invariantName on @p ts (as produced by RandomWalkExplorer).
 * Fatal if the input trace does not reproduce the violation — a
 * non-reproducing "counterexample" means the oracle or the
 * canonicalizer is broken, which callers must not paper over.
 *
 * Four phases: truncate at the first violation, splice out state
 * revisits (always-valid cycle elimination), re-route the suffix via
 * a bounded breadth-first search for a strictly shorter completion
 * (at most @p searchBudget states expanded in total, so the phase
 * stays local on instances far too large to exhaust), then delete
 * firing windows down to single steps. The result is 1-minimal.
 *
 * @p store selects the capacity tier of the shrinker's internal
 * visited stores (cycle elimination and the re-routing search), so a
 * capacity-constrained run can shrink under the same budget it
 * explored under. Fatal on StoreTier::Compact: shrinking requires
 * exact state identity (a fingerprint-only dedup could splice two
 * DIFFERENT states and fabricate an invalid "counterexample"), which
 * is exactly the soundness hash compaction gives up.
 */
ShrinkResult shrinkTrace(const TransitionSystem &ts,
                         const std::vector<std::uint32_t> &trace,
                         const std::string &invariantName,
                         std::uint64_t searchBudget = 50'000,
                         const StoreTierOptions &store = {});

} // namespace neo

#endif // NEO_VERIF_SHRINK_HPP
