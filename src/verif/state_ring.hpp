/**
 * @file
 * Flat byte ring for queues of fixed-stride states.
 *
 * The compact-hash explorer's `pending` frontier used to hold one
 * `std::deque<VState>` entry per unexpanded state — a 24-byte vector
 * header plus a separate heap block per state, for states that are
 * all exactly numVars bytes. This ring packs them into one contiguous
 * buffer at numVars bytes per slot: push_back/pop_front at both
 * ends (the sequential explorer's maxStates rollback needs
 * push_front), random access by offset from the front (checkpoint
 * serialization walks the unexpanded suffix), and a measured
 * memoryBytes() for the explorer's accounting.
 *
 * Single-threaded; the sequential explorer is the only user.
 */

#ifndef NEO_VERIF_STATE_RING_HPP
#define NEO_VERIF_STATE_RING_HPP

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hpp"

namespace neo
{

class StateRing
{
  public:
    explicit StateRing(std::size_t stride) : stride_(stride)
    {
        neo_assert(stride > 0, "StateRing needs a positive stride");
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t stride() const { return stride_; }

    /** Buffer footprint (capacity, not just occupancy — the bytes are
     *  really allocated, so the memory accounting charges them). */
    std::uint64_t memoryBytes() const { return buf_.size(); }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void
    push_back(const std::uint8_t *state)
    {
        if (size_ == cap_)
            grow(size_ + 1);
        std::memcpy(slot((head_ + size_) & (cap_ - 1)), state,
                    stride_);
        ++size_;
    }

    void
    push_front(const std::uint8_t *state)
    {
        if (size_ == cap_)
            grow(size_ + 1);
        head_ = (head_ + cap_ - 1) & (cap_ - 1);
        std::memcpy(slot(head_), state, stride_);
        ++size_;
    }

    const std::uint8_t *
    front() const
    {
        neo_assert(size_ > 0, "StateRing::front on empty ring");
        return slot(head_);
    }

    /** The n-th unexpanded state from the front (0 == front()). */
    const std::uint8_t *
    at(std::size_t n) const
    {
        neo_assert(n < size_, "StateRing::at out of range");
        return slot((head_ + n) & (cap_ - 1));
    }

    void
    pop_front()
    {
        neo_assert(size_ > 0, "StateRing::pop_front on empty ring");
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

  private:
    const std::uint8_t *
    slot(std::size_t i) const
    {
        return buf_.data() + i * stride_;
    }
    std::uint8_t *
    slot(std::size_t i)
    {
        return buf_.data() + i * stride_;
    }

    void
    grow(std::size_t minCap)
    {
        std::size_t cap = cap_ == 0 ? 64 : cap_;
        while (cap < minCap)
            cap *= 2;
        std::vector<std::uint8_t> nb(cap * stride_);
        for (std::size_t n = 0; n < size_; ++n)
            std::memcpy(nb.data() + n * stride_,
                        slot((head_ + n) & (cap_ - 1)), stride_);
        buf_ = std::move(nb);
        cap_ = cap;
        head_ = 0;
    }

    std::size_t stride_;
    std::size_t cap_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::vector<std::uint8_t> buf_;
};

} // namespace neo

#endif // NEO_VERIF_STATE_RING_HPP
