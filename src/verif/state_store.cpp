#include "verif/state_store.hpp"

#include <bit>
#include <cstdlib>
#include <new>

namespace neo
{

namespace
{

unsigned
log2Ceil(std::uint64_t n)
{
    unsigned lg = 0;
    while ((1ULL << lg) < n)
        ++lg;
    return lg;
}

} // namespace

StateStore::StateStore(std::size_t stride,
                       std::uint64_t expectedStates, HashFn hash)
    : stride_(stride == 0 ? 1 : stride),
      hash_(hash != nullptr ? hash : &stateHash)
{
    // First slab sized so the common small-model case fits in one
    // slab; reserve() below may bump it before first use.
    firstSlabLog2_ = 10;
    std::uint64_t cap = kMinCapacity;
    if (expectedStates > 0) {
        // 0.75 load factor: capacity > expected * 4/3.
        while (cap * 3 / 4 <= expectedStates)
            cap <<= 1;
        firstSlabLog2_ = log2Ceil(expectedStates);
        if (firstSlabLog2_ < 10)
            firstSlabLog2_ = 10;
    }
    lgCapacity_ = log2Ceil(cap);
    capacity_ = cap;
    table_.assign(capacity_, Slot{0, kNoId});
}

StateStore::~StateStore()
{
    for (unsigned k = 0; k < slabsAllocated_; ++k)
        ::operator delete(slabs_[k]);
}

void
StateStore::reserve(std::uint64_t expectedStates)
{
    if (expectedStates == 0)
        return;
    if (slabsAllocated_ == 0) {
        unsigned lg = log2Ceil(expectedStates);
        if (lg > firstSlabLog2_)
            firstSlabLog2_ = lg;
    }
    std::uint64_t cap = capacity_;
    while (cap * 3 / 4 <= expectedStates)
        cap <<= 1;
    while (capacity_ < cap)
        growTable();
}

std::uint32_t
StateStore::pushState(const std::uint8_t *state)
{
    if (size_ == arenaCapacity_) {
        const unsigned k = slabsAllocated_;
        const std::uint64_t slabStates = 1ULL
                                         << (firstSlabLog2_ + k);
        slabs_[k] = static_cast<std::uint8_t *>(
            ::operator new(slabStates * stride_));
        ++slabsAllocated_;
        arenaCapacity_ += slabStates;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(size_);
    std::memcpy(const_cast<std::uint8_t *>(at(id)), state, stride_);
    ++size_;
    return id;
}

std::pair<std::uint32_t, bool>
StateStore::internHashed(const std::uint8_t *state,
                         std::uint64_t hash)
{
    const std::uint32_t fp = static_cast<std::uint32_t>(hash >> 32);
    const std::size_t mask =
        static_cast<std::size_t>(capacity_) - 1;
    std::size_t i = probeStart(fp);
    std::size_t probes = 0;
    for (;;) {
        Slot &slot = table_[i];
        if (slot.id == kNoId)
            break;
        if (slot.fp == fp &&
            std::memcmp(at(slot.id), state, stride_) == 0) {
            return {slot.id, false};
        }
        i = (i + 1) & mask;
        ++probes;
    }
    const std::uint32_t id = pushState(state);
    table_[i] = Slot{fp, id};

    unsigned bucket =
        probes == 0
            ? 0
            : static_cast<unsigned>(std::bit_width(probes));
    if (bucket >= kProbeBuckets)
        bucket = kProbeBuckets - 1;
    ++probeHist_[bucket];

    if (size_ * 4 >= capacity_ * 3)
        growTable();
    return {id, true};
}

void
StateStore::growTable()
{
    const std::uint64_t newCap = capacity_ << 1;
    std::vector<Slot> fresh(newCap, Slot{0, kNoId});
    const std::size_t mask = static_cast<std::size_t>(newCap) - 1;
    ++lgCapacity_;
    for (const Slot &slot : table_) {
        if (slot.id == kNoId)
            continue;
        std::size_t i = probeStart(slot.fp);
        while (fresh[i].id != kNoId)
            i = (i + 1) & mask;
        fresh[i] = slot;
    }
    table_.swap(fresh);
    capacity_ = newCap;
}

std::uint64_t
StateStore::memoryBytes() const
{
    std::uint64_t bytes = sizeof(StateStore);
    bytes += size_ * stride_;                // touched arena bytes
    bytes += std::uint64_t(slabsAllocated_) * 32; // allocator headers
    bytes += capacity_ * sizeof(Slot);       // full table allocation
    return bytes;
}

} // namespace neo
