#include "verif/state_store.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/io_retry.hpp"
#include "sim/logging.hpp"

namespace neo
{

namespace
{

unsigned
log2Ceil(std::uint64_t n)
{
    unsigned lg = 0;
    while ((1ULL << lg) < n)
        ++lg;
    return lg;
}

/** LEB128. Delta records are tiny (a few diffs against the BFS
 *  parent), so byte-granular varints are where the tier's 10x+ comes
 *  from; the decoder is branch-light because >1-byte values are rare
 *  in practice (ids under 2^28 and gaps under 128). */
std::size_t
encodeVarint(std::uint64_t v, std::uint8_t *out)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        out[n++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
    }
    out[n++] = static_cast<std::uint8_t>(v);
    return n;
}

std::uint64_t
decodeVarint(const std::uint8_t *&p)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        const std::uint8_t b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if ((b & 0x80) == 0)
            return v;
        shift += 7;
    }
}

/** Monotone file id for spill slabs: unique within the process even
 *  when 64 parallel shards allocate concurrently-created stores. */
std::uint64_t
nextSpillSeq()
{
    static std::uint64_t seq = 0;
    // Callers hold their shard lock, but two DIFFERENT stores may
    // allocate at once; a relaxed atomic would do, yet plain
    // __atomic keeps this header-free.
    return __atomic_fetch_add(&seq, 1, __ATOMIC_RELAXED);
}

} // namespace

const char *
storeTierName(StoreTier t)
{
    switch (t) {
    case StoreTier::Plain:
        return "plain";
    case StoreTier::Delta:
        return "delta";
    case StoreTier::Compact:
        return "compact";
    }
    return "?";
}

double
compactOmissionProbability(std::uint64_t states, unsigned bits)
{
    if (states < 2)
        return 0.0;
    // P(omission) = 1 - exp(-n(n-1) / 2^(bits+1)); long double keeps
    // n^2 exact to 2^64 and expm1 keeps the tiny-p regime honest
    // (1e-12 must not round to 0 in a report about unsoundness).
    const long double n = static_cast<long double>(states);
    const long double expected =
        n * (n - 1.0L) * std::pow(0.5L, static_cast<int>(bits) + 1);
    const long double p = -std::expm1(-expected);
    return static_cast<double>(p);
}

StateStore::StateStore(std::size_t stride,
                       std::uint64_t expectedStates, HashFn hash,
                       const StoreTierOptions &opts)
    : stride_(stride == 0 ? 1 : stride),
      hash_(opts.hash != nullptr
                ? opts.hash
                : (hash != nullptr ? hash : &stateHash)),
      tier_(opts.tier), compactBits_(opts.compactBits),
      anchorEvery_(opts.anchorEvery), spill_(!opts.spillDir.empty()),
      spillDir_(opts.spillDir),
      hotBudget_(opts.hotBytes != 0 ? opts.hotBytes
                                    : (256ULL << 20))
{
    if (compactBits_ != 64 && compactBits_ != 128)
        neo_fatal("hash compaction supports 64 or 128 bit "
                  "fingerprints, not ",
                  compactBits_);
    if (anchorEvery_ < 1)
        anchorEvery_ = 1;
    if (anchorEvery_ > 255)
        anchorEvery_ = 255; // hop field is 8 bits

    states_.elemSize = stride_;
    index_.elemSize = 8;
    hashes_.elemSize = compactBits_ == 128 ? 16 : 8;
    bytes_.elemSize = 1;
    // A delta record never exceeds stride_ + 16 bytes (bigger diffs
    // fall back to an anchor), so the first byte slab must fit one.
    bytes_.firstLog2 = 16;
    if ((1ULL << bytes_.firstLog2) < stride_ + 16)
        bytes_.firstLog2 = log2Ceil(stride_ + 16);

    unsigned firstLog2 = 10;
    std::uint64_t cap = kMinCapacity;
    if (expectedStates > 0) {
        // 0.75 load factor: capacity > expected * 4/3.
        while (cap * 3 / 4 <= expectedStates)
            cap <<= 1;
        firstLog2 = log2Ceil(expectedStates);
        if (firstLog2 < 10)
            firstLog2 = 10;
    }
    states_.firstLog2 = firstLog2;
    index_.firstLog2 = firstLog2;
    hashes_.firstLog2 = firstLog2;

    // Create the spill dir BEFORE the first allocation (the probe
    // table below is itself spillable) — one level, like mkdir(1)
    // without -p, so "--spill-dir /tmp/spill" just works; a deeper
    // missing path still falls back to heap with a warning at the
    // first slab.
    if (spill_)
        ::mkdir(spillDir_.c_str(), 0700);

    lgCapacity_ = log2Ceil(cap);
    allocTable(cap);

    if (tier_ == StoreTier::Delta) {
        lastState_.reserve(stride_);
        cmpBuf_.resize(stride_);
    }
}

StateStore::~StateStore()
{
    for (int r = 0; r < static_cast<int>(regions_.size()); ++r)
        freeRegion(r);
}

// ---------------------------------------------------------------- //
// Spill regions                                                    //
// ---------------------------------------------------------------- //

int
StateStore::allocRegion(std::uint64_t bytes, bool spillable)
{
    Region reg;
    reg.bytes = bytes;
    if (spill_ && spillable) {
        char name[64];
        std::snprintf(name, sizeof name, "/neo-spill-%ld-%llu.slab",
                      static_cast<long>(::getpid()),
                      static_cast<unsigned long long>(
                          nextSpillSeq()));
        const std::string path = spillDir_ + name;
        const int fd = ::open(path.c_str(),
                              O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC,
                              0600);
        if (fd >= 0) {
            void *p = MAP_FAILED;
            if (::ftruncate(fd, static_cast<off_t>(bytes)) == 0)
                p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED, fd, 0);
            // Unlink BEFORE first use: the kernel keeps the inode
            // alive while mapped, and any death — SIGKILL mid-spill
            // included — reclaims it. The spill dir can never
            // accumulate partial slabs.
            ::unlink(path.c_str());
            ::close(fd);
            if (p != MAP_FAILED) {
                reg.ptr = static_cast<std::uint8_t *>(p);
                reg.fileBacked = true;
                hotSpillBytes_ += bytes;
            }
        }
        if (!reg.fileBacked) {
            static bool warned = false;
            if (!warned) {
                warned = true;
                neo_warn("--spill-dir ", spillDir_,
                         ": cannot create mmap slab; falling back "
                         "to heap for this and further slabs");
            }
        }
    }
    if (reg.ptr == nullptr)
        reg.ptr = static_cast<std::uint8_t *>(
            ::operator new(static_cast<std::size_t>(bytes)));
    const int id = static_cast<int>(regions_.size());
    regions_.push_back(reg);
    return id;
}

void
StateStore::freeRegion(int r)
{
    Region &reg = regions_[static_cast<std::size_t>(r)];
    if (reg.freed || reg.ptr == nullptr)
        return;
    if (reg.fileBacked) {
        if (reg.hot)
            hotSpillBytes_ -= reg.bytes;
        ::munmap(reg.ptr, reg.bytes);
    } else {
        ::operator delete(reg.ptr);
    }
    reg.ptr = nullptr;
    reg.freed = true;
}

void
StateStore::shedRegion(int r)
{
    Region &reg = regions_[static_cast<std::size_t>(r)];
    if (reg.freed || !reg.fileBacked || !reg.hot)
        return;
    // Schedule writeback of dirty pages first (EINTR-retried — a
    // supervision signal mid-shed must not skip it), then drop this
    // process's page-table entries. MADV_DONTNEED on a MAP_SHARED
    // file mapping only drops the entries: the data stays intact in
    // the page cache (and the backing file) and faults back on the
    // next read — which is why shedding is safe against the lock-free
    // at()/copyTo() readers that may be touching the slab right now.
    msyncRetry(reg.ptr, reg.bytes, MS_ASYNC);
    ::madvise(reg.ptr, reg.bytes, MADV_DONTNEED);
    reg.hot = false;
    hotSpillBytes_ -= reg.bytes;
    ++spillSheds_;
}

void
StateStore::maintainHotBudget(int keep)
{
    // Shed oldest-allocated first: geometric slabs mean the oldest
    // regions are both the smallest and — under BFS locality — the
    // least likely to be read again soon.
    for (int r = 0;
         hotSpillBytes_ > hotBudget_ &&
         r < static_cast<int>(regions_.size());
         ++r) {
        if (r == keep)
            continue;
        shedRegion(r);
    }
}

std::uint64_t
StateStore::shedCold()
{
    if (!spill_)
        return 0;
    std::uint64_t shed = 0;
    for (int r = 0; r < static_cast<int>(regions_.size()); ++r) {
        const Region &reg = regions_[static_cast<std::size_t>(r)];
        if (!reg.freed && reg.fileBacked && reg.hot) {
            shedRegion(r);
            ++shed;
        }
    }
    return shed;
}

// ---------------------------------------------------------------- //
// Arenas                                                           //
// ---------------------------------------------------------------- //

void
StateStore::arenaGrow(Arena &a, bool spillable)
{
    const unsigned k = a.nSlabs;
    if (k >= kMaxSlabs)
        neo_fatal("state arena exhausted: 2^40+ elements");
    const std::uint64_t elems = 1ULL << (a.firstLog2 + k);
    const int r = allocRegion(elems * a.elemSize, spillable);
    a.slabs[k] = regions_[static_cast<std::size_t>(r)].ptr;
    a.regionOf[k] = r;
    a.nSlabs = k + 1;
    a.capacity += elems;
    if (spill_)
        maintainHotBudget(r);
}

std::uint64_t
StateStore::arenaTouchedBytes(const Arena &a,
                              std::uint64_t usedElems,
                              bool hotOnly) const
{
    std::uint64_t bytes = 0;
    for (unsigned k = 0; k < a.nSlabs; ++k) {
        const std::uint64_t base = ((1ULL << k) - 1) << a.firstLog2;
        if (base >= usedElems)
            break;
        const std::uint64_t elems = 1ULL << (a.firstLog2 + k);
        const std::uint64_t touched =
            usedElems - base < elems ? usedElems - base : elems;
        const Region &reg =
            regions_[static_cast<std::size_t>(a.regionOf[k])];
        if (!hotOnly || !reg.fileBacked || reg.hot)
            bytes += touched * a.elemSize;
    }
    return bytes;
}

// ---------------------------------------------------------------- //
// Table                                                            //
// ---------------------------------------------------------------- //

void
StateStore::allocTable(std::uint64_t capacity)
{
    const int r =
        allocRegion(capacity * sizeof(Slot), /*spillable=*/true);
    table_ = reinterpret_cast<Slot *>(
        regions_[static_cast<std::size_t>(r)].ptr);
    tableRegion_ = r;
    capacity_ = capacity;
    // All-ones bytes ⇒ every slot's id is kNoId (empty); fp is only
    // read behind a non-empty id, so its garbage value is dead.
    std::memset(table_, 0xff,
                static_cast<std::size_t>(capacity * sizeof(Slot)));
}

void
StateStore::growTable()
{
    const int oldRegion = tableRegion_;
    const Slot *old = table_;
    const std::uint64_t oldCap = capacity_;
    ++lgCapacity_;
    allocTable(oldCap << 1);
    const std::size_t mask = static_cast<std::size_t>(capacity_) - 1;
    for (std::uint64_t s = 0; s < oldCap; ++s) {
        const Slot slot = old[s];
        if (slot.id == kNoId)
            continue;
        std::size_t i = probeStart(slot.fp);
        while (table_[i].id != kNoId)
            i = (i + 1) & mask;
        table_[i] = slot;
    }
    freeRegion(oldRegion);
    if (spill_)
        maintainHotBudget(tableRegion_);
}

void
StateStore::reserve(std::uint64_t expectedStates)
{
    if (expectedStates == 0)
        return;
    const unsigned lg = log2Ceil(expectedStates);
    if (states_.nSlabs == 0 && lg > states_.firstLog2)
        states_.firstLog2 = lg;
    if (index_.nSlabs == 0 && lg > index_.firstLog2)
        index_.firstLog2 = lg;
    if (hashes_.nSlabs == 0 && lg > hashes_.firstLog2)
        hashes_.firstLog2 = lg;
    std::uint64_t cap = capacity_;
    while (cap * 3 / 4 <= expectedStates)
        cap <<= 1;
    while (capacity_ < cap)
        growTable();
}

// ---------------------------------------------------------------- //
// Tier payloads                                                    //
// ---------------------------------------------------------------- //

[[noreturn]] void
StateStore::badTierAt() const
{
    neo_fatal(tier_ == StoreTier::Compact
                  ? "hash-compaction store holds no state bytes "
                    "(at/copyTo unavailable)"
                  : "delta-tier states must be read through "
                    "copyTo(), not at()");
}

std::uint32_t
StateStore::pushPlain(const std::uint8_t *state)
{
    if (size_ == states_.capacity)
        arenaGrow(states_, /*spillable=*/true);
    const std::uint32_t id = static_cast<std::uint32_t>(size_);
    std::memcpy(arenaPtr(states_, id), state, stride_);
    ++size_;
    return id;
}

std::uint32_t
StateStore::pushDelta(const std::uint8_t *state,
                      std::uint32_t baseId,
                      const std::uint8_t *baseBytes)
{
    // Resolve the delta base: the caller's BFS parent when provided,
    // else the previously interned state (the parallel explorer's
    // cross-shard fallback — BFS locality makes consecutive interns
    // near-neighbours too).
    const std::uint8_t *bb = nullptr;
    std::uint32_t bid = kNoId;
    if (baseId != kNoId && baseBytes != nullptr && baseId < size_) {
        bid = baseId;
        bb = baseBytes;
    } else if (lastId_ != kNoId) {
        bid = lastId_;
        bb = lastState_.data();
    }

    std::uint8_t enc[5 + 3 + 3 * 256];
    static_assert(sizeof(enc) >= 5 + 3,
                  "room for base id + diff count");
    std::size_t encLen = 0;
    unsigned hop = 0;
    if (bb != nullptr) {
        const unsigned baseHop = hopOf(bid);
        if (baseHop < anchorEvery_) {
            // Trial-encode; abandon for an anchor the moment the
            // record stops paying for itself.
            std::uint8_t diffs[3 * 256];
            std::size_t dn = 0;
            std::uint32_t nDiffs = 0;
            std::size_t prev = 0;
            bool fits = stride_ > 8; // tiny strides: anchors only
            if (fits) {
                for (std::size_t i = 0; i < stride_; ++i) {
                    if (state[i] == bb[i])
                        continue;
                    if (dn + 4 > sizeof(diffs) ||
                        dn + 12 >= stride_) {
                        fits = false;
                        break;
                    }
                    const std::uint64_t gap =
                        nDiffs == 0 ? i : i - prev - 1;
                    dn += encodeVarint(gap, diffs + dn);
                    diffs[dn++] = state[i];
                    prev = i;
                    ++nDiffs;
                }
            }
            if (fits) {
                encLen = encodeVarint(bid, enc);
                encLen += encodeVarint(nDiffs, enc + encLen);
                std::memcpy(enc + encLen, diffs, dn);
                encLen += dn;
                if (encLen < stride_)
                    hop = baseHop + 1;
                else
                    encLen = 0; // anchor wins after all
            }
        }
    }

    const std::uint64_t rec = hop != 0 ? encLen : stride_;
    // Records never straddle a slab: pad to the next slab when the
    // current one cannot fit this record (offsets stay monotone and
    // a record is always contiguous for the lock-free readers).
    for (;;) {
        if (byteTail_ == bytes_.capacity) {
            arenaGrow(bytes_, /*spillable=*/true);
            continue;
        }
        const std::uint64_t q = (byteTail_ >> bytes_.firstLog2) + 1;
        const unsigned k =
            static_cast<unsigned>(std::bit_width(q)) - 1;
        const std::uint64_t slabEnd =
            (((1ULL << k) - 1) << bytes_.firstLog2) +
            (1ULL << (bytes_.firstLog2 + k));
        if (byteTail_ + rec <= slabEnd)
            break;
        byteTail_ = slabEnd;
    }
    std::uint8_t *dst = arenaPtr(bytes_, byteTail_);
    std::memcpy(dst, hop != 0 ? enc : state,
                static_cast<std::size_t>(rec));
    const std::uint64_t offset = byteTail_;
    byteTail_ += rec;

    const std::uint32_t id = static_cast<std::uint32_t>(size_);
    if (size_ == index_.capacity)
        arenaGrow(index_, /*spillable=*/true);
    const std::uint64_t entry = (offset << 8) | hop;
    std::memcpy(arenaPtr(index_, id), &entry, 8);
    ++size_;

    lastState_.assign(state, state + stride_);
    lastId_ = id;
    return id;
}

unsigned
StateStore::hopOf(std::uint32_t id) const
{
    if (tier_ != StoreTier::Delta || id >= size_)
        return 0;
    std::uint64_t entry;
    std::memcpy(&entry, arenaPtr(index_, id), 8);
    return static_cast<unsigned>(entry & 0xff);
}

void
StateStore::reconstruct(std::uint32_t id, std::uint8_t *out) const
{
    // Walk the chain to the anchor (≤ anchorEvery_ hops), then apply
    // the diffs newest-last. Every record on the chain was fully
    // written before `id` was published, so lock-free reads see
    // complete bytes.
    std::uint64_t offs[256];
    unsigned n = 0;
    std::uint32_t cur = id;
    for (;;) {
        std::uint64_t entry;
        std::memcpy(&entry, arenaPtr(index_, cur), 8);
        offs[n++] = entry >> 8;
        if ((entry & 0xff) == 0)
            break;
        const std::uint8_t *r = arenaPtr(bytes_, entry >> 8);
        cur = static_cast<std::uint32_t>(decodeVarint(r));
    }
    std::memcpy(out, arenaPtr(bytes_, offs[n - 1]), stride_);
    for (unsigned i = n - 1; i-- > 0;) {
        const std::uint8_t *r = arenaPtr(bytes_, offs[i]);
        decodeVarint(r); // base id, already consumed via the chain
        const std::uint64_t nDiffs = decodeVarint(r);
        std::size_t pos = 0;
        for (std::uint64_t d = 0; d < nDiffs; ++d) {
            const std::uint64_t gap = decodeVarint(r);
            pos = d == 0 ? static_cast<std::size_t>(gap)
                         : pos + static_cast<std::size_t>(gap) + 1;
            out[pos] = *r++;
        }
    }
}

void
StateStore::copyTo(std::uint32_t id, VState &out) const
{
    out.resize(stride_);
    if (tier_ == StoreTier::Plain)
        std::memcpy(out.data(), arenaPtr(states_, id), stride_);
    else if (tier_ == StoreTier::Delta)
        reconstruct(id, out.data());
    else
        badTierAt();
}

bool
StateStore::equalsStored(std::uint32_t id,
                         const std::uint8_t *state) const
{
    if (tier_ == StoreTier::Plain)
        return std::memcmp(arenaPtr(states_, id), state, stride_) ==
               0;
    reconstruct(id, cmpBuf_.data());
    return std::memcmp(cmpBuf_.data(), state, stride_) == 0;
}

std::uint32_t
StateStore::pushCompact(std::uint64_t lo, std::uint64_t hi)
{
    if (size_ == hashes_.capacity)
        arenaGrow(hashes_, /*spillable=*/true);
    const std::uint32_t id = static_cast<std::uint32_t>(size_);
    std::uint8_t *p = arenaPtr(hashes_, id);
    std::memcpy(p, &lo, 8);
    if (compactBits_ == 128)
        std::memcpy(p + 8, &hi, 8);
    ++size_;
    return id;
}

std::pair<std::uint64_t, std::uint64_t>
StateStore::hashAt(std::uint32_t id) const
{
    if (tier_ != StoreTier::Compact)
        neo_fatal("hashAt() is a compact-tier accessor");
    std::uint64_t lo = 0, hi = 0;
    const std::uint8_t *p = arenaPtr(hashes_, id);
    std::memcpy(&lo, p, 8);
    if (compactBits_ == 128)
        std::memcpy(&hi, p + 8, 8);
    return {lo, hi};
}

// ---------------------------------------------------------------- //
// Interning                                                        //
// ---------------------------------------------------------------- //

std::pair<std::uint32_t, bool>
StateStore::insertHash(std::uint64_t lo, std::uint64_t hi)
{
    if (tier_ != StoreTier::Compact)
        neo_fatal("insertHash() is a compact-tier entry point");
    const std::uint32_t fp = static_cast<std::uint32_t>(lo >> 32);
    const std::size_t mask =
        static_cast<std::size_t>(capacity_) - 1;
    std::size_t i = probeStart(fp);
    std::size_t probes = 0;
    for (;;) {
        const Slot slot = table_[i];
        if (slot.id == kNoId)
            break;
        if (slot.fp == fp) {
            const auto [slo, shi] = hashAt(slot.id);
            if (slo == lo && (compactBits_ == 64 || shi == hi))
                return {slot.id, false};
        }
        i = (i + 1) & mask;
        ++probes;
    }
    const std::uint32_t id = pushCompact(lo, hi);
    table_[i] = Slot{fp, id};
    unsigned bucket =
        probes == 0
            ? 0
            : static_cast<unsigned>(std::bit_width(probes));
    if (bucket >= kProbeBuckets)
        bucket = kProbeBuckets - 1;
    ++probeHist_[bucket];
    if (size_ * 4 >= capacity_ * 3)
        growTable();
    return {id, true};
}

std::pair<std::uint32_t, bool>
StateStore::internHashed(const std::uint8_t *state,
                         std::uint64_t hash, std::uint32_t baseId,
                         const std::uint8_t *baseBytes)
{
    if (tier_ == StoreTier::Compact) {
        // Identity IS the fingerprint: two distinct states sharing
        // 64/128 hash bits conflate here, by design. The caller owns
        // reporting compactOmissionProbability().
        const std::uint64_t hi = compactBits_ == 128
                                     ? stateHash2(state, stride_)
                                     : 0;
        return insertHash(hash, hi);
    }
    const std::uint32_t fp = static_cast<std::uint32_t>(hash >> 32);
    const std::size_t mask =
        static_cast<std::size_t>(capacity_) - 1;
    std::size_t i = probeStart(fp);
    std::size_t probes = 0;
    for (;;) {
        const Slot slot = table_[i];
        if (slot.id == kNoId)
            break;
        if (slot.fp == fp && equalsStored(slot.id, state))
            return {slot.id, false};
        i = (i + 1) & mask;
        ++probes;
    }
    const std::uint32_t id =
        tier_ == StoreTier::Delta
            ? pushDelta(state, baseId, baseBytes)
            : pushPlain(state);
    table_[i] = Slot{fp, id};

    unsigned bucket =
        probes == 0
            ? 0
            : static_cast<unsigned>(std::bit_width(probes));
    if (bucket >= kProbeBuckets)
        bucket = kProbeBuckets - 1;
    ++probeHist_[bucket];

    if (size_ * 4 >= capacity_ * 3)
        growTable();
    return {id, true};
}

std::uint32_t
StateStore::lookupHashed(const std::uint8_t *state,
                         std::uint64_t hash) const
{
    const std::uint32_t fp = static_cast<std::uint32_t>(hash >> 32);
    const std::size_t mask =
        static_cast<std::size_t>(capacity_) - 1;
    std::size_t i = probeStart(fp);
    if (tier_ == StoreTier::Compact) {
        const std::uint64_t hi = compactBits_ == 128
                                     ? stateHash2(state, stride_)
                                     : 0;
        for (;;) {
            const Slot slot = table_[i];
            if (slot.id == kNoId)
                return kNoId;
            if (slot.fp == fp) {
                const auto [slo, shi] = hashAt(slot.id);
                if (slo == hash &&
                    (compactBits_ == 64 || shi == hi))
                    return slot.id;
            }
            i = (i + 1) & mask;
        }
    }
    for (;;) {
        const Slot slot = table_[i];
        if (slot.id == kNoId)
            return kNoId;
        if (slot.fp == fp && equalsStored(slot.id, state))
            return slot.id;
        i = (i + 1) & mask;
    }
}

void
StateStore::internBatchHashed(const std::uint8_t *const *states,
                              const std::uint64_t *hashes,
                              std::size_t n, std::uint32_t baseId,
                              const std::uint8_t *baseBytes,
                              std::pair<std::uint32_t, bool> *out)
{
    // One pass of ordinary interns: each element sees every earlier
    // element's insertion (in-batch dedup), delta records chain off
    // the shared base exactly as the single-intern path would, and
    // table growth mid-batch is handled by the intern itself.
    for (std::size_t k = 0; k < n; ++k)
        out[k] = internHashed(states[k], hashes[k], baseId, baseBytes);
}

std::uint64_t
StateStore::memoryBytes() const
{
    std::uint64_t bytes = sizeof(StateStore);
    switch (tier_) {
    case StoreTier::Plain:
        bytes += arenaTouchedBytes(states_, size_, true);
        break;
    case StoreTier::Delta:
        // Both the varint records AND the anchor index are charged —
        // the index is 8 bytes/state, often bigger than the records
        // themselves, and forgetting it once broke the ±5% bound.
        bytes += arenaTouchedBytes(bytes_, byteTail_, true);
        bytes += arenaTouchedBytes(index_, size_, true);
        bytes += lastState_.capacity() + cmpBuf_.capacity();
        break;
    case StoreTier::Compact:
        bytes += arenaTouchedBytes(hashes_, size_, true);
        break;
    }
    const std::uint64_t nSlabs = states_.nSlabs + bytes_.nSlabs +
                                 index_.nSlabs + hashes_.nSlabs;
    bytes += nSlabs * 32; // allocator/bookkeeping headers
    if (tableRegion_ >= 0) {
        const Region &reg =
            regions_[static_cast<std::size_t>(tableRegion_)];
        if (!reg.fileBacked || reg.hot)
            bytes += capacity_ * sizeof(Slot);
    }
    bytes += regions_.capacity() * sizeof(Region);
    return bytes;
}

} // namespace neo
