/**
 * @file
 * Arena-interned state storage for the exploration engines.
 *
 * Murphi-lineage checkers win capacity battles by refusing to pay
 * per-state heap structure: canonical states live contiguously in
 * bump-allocated slabs (one `numVars()`-stride record each, no vector
 * header, no malloc chunk rounding) and the visited set is a flat
 * open-addressing table of 32-bit fingerprint + 32-bit arena index.
 * The paper's push-button methodology (§4.1) depends on exactly this
 * kind of throughput — the original Neo construction blew a >200 GB
 * budget before it was redesigned — so every engine here (sequential
 * BFS, the sharded parallel explorer, the trace shrinker) dedupes
 * through this store instead of `std::unordered_map<VState, id>`.
 *
 * Concurrency contract: intern() and reserve() require external
 * synchronization (the parallel explorer wraps each shard's store in
 * that shard's mutex). at()/stride() are safe to call WITHOUT the
 * lock for any id whose publication happened-before the call (e.g. an
 * id received through a mutex-guarded work queue): slab pointers live
 * in a fixed-size array that is never reallocated, and a state's
 * bytes are written exactly once, before its id escapes the lock.
 */

#ifndef NEO_VERIF_STATE_STORE_HPP
#define NEO_VERIF_STATE_STORE_HPP

#include <array>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "verif/transition_system.hpp"

namespace neo
{

/**
 * 64-bit state hash: 8-byte chunks folded with multiply-xor and a
 * murmur3-style finalizer. Low bits select the parallel explorer's
 * shard, high 32 bits are the visited-table fingerprint, so both
 * halves must avalanche. Roughly 8x fewer data-dependent steps than
 * the byte-wise FNV-1a it replaces — the hash runs once per generated
 * successor, which makes it hot-path.
 */
inline std::uint64_t
stateHash(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                      (static_cast<std::uint64_t>(n) *
                       0xff51afd7ed558ccdULL);
    while (n >= 8) {
        std::uint64_t k;
        std::memcpy(&k, p, 8);
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 29;
        h = (h ^ k) * 0x2545f4914f6cdd1dULL;
        p += 8;
        n -= 8;
    }
    if (n > 0) {
        std::uint64_t k = 0;
        std::memcpy(&k, p, n);
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 29;
        h = (h ^ k) * 0x2545f4914f6cdd1dULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 32;
    return h;
}

/**
 * Interning store: a bump arena of fixed-stride state records plus an
 * open-addressing visited table (linear probing, power-of-two
 * capacity, fingerprint pre-filter before the byte compare).
 *
 * Arena ids are dense 32-bit insertion indices — the engines use them
 * directly as state ids, and index their parent/depth side arrays
 * with them. Slab k holds `firstSlab << k` states, so a fixed array
 * of slab pointers addresses 2^40+ states without ever reallocating
 * the directory (which is what makes lock-free at() reads sound).
 */
class StateStore
{
  public:
    using HashFn = std::uint64_t (*)(const std::uint8_t *,
                                     std::size_t);

    /** Arena id sentinel for an empty table slot. */
    static constexpr std::uint32_t kNoId = 0xffffffffu;

    /**
     * @param stride bytes per state (`ts.numVars()`)
     * @param expectedStates pre-size the table and first slab for
     *        this many states (0 = start minimal and grow)
     * @param hash override the state hash — tests inject degenerate
     *        hashes to force fingerprint collisions; nullptr uses
     *        stateHash()
     */
    explicit StateStore(std::size_t stride,
                        std::uint64_t expectedStates = 0,
                        HashFn hash = nullptr);

    StateStore(const StateStore &) = delete;
    StateStore &operator=(const StateStore &) = delete;
    StateStore(StateStore &&) = delete;

    ~StateStore();

    /**
     * Intern one canonical state: @return (arena id, freshly
     * inserted). A state equal byte-for-byte to an already-interned
     * one returns the existing id — the fingerprint pre-filter
     * rejects almost all non-equal probes, and a full byte compare
     * confirms every fingerprint hit, so hash collisions can never
     * conflate two distinct states.
     */
    std::pair<std::uint32_t, bool> intern(const std::uint8_t *state)
    {
        return internHashed(state, hash_(state, stride_));
    }
    std::pair<std::uint32_t, bool> intern(const VState &s)
    {
        return intern(s.data());
    }
    /** Intern with a precomputed stateHash() value — the parallel
     *  explorer hashes once for shard selection and reuses it. */
    std::pair<std::uint32_t, bool>
    internHashed(const std::uint8_t *state, std::uint64_t hash);

    /** Bytes of an interned state; stable for the store's lifetime. */
    const std::uint8_t *
    at(std::uint32_t id) const
    {
        // Slab k covers ids [first*(2^k - 1), first*(2^(k+1) - 1)).
        const std::uint64_t q =
            (static_cast<std::uint64_t>(id) >> firstSlabLog2_) + 1;
        const unsigned k = 63 - static_cast<unsigned>(
                                    __builtin_clzll(q));
        const std::uint64_t base =
            ((1ULL << k) - 1) << firstSlabLog2_;
        return slabs_[k] + (id - base) * stride_;
    }

    void
    copyTo(std::uint32_t id, VState &out) const
    {
        const std::uint8_t *p = at(id);
        out.assign(p, p + stride_);
    }

    std::uint64_t size() const { return size_; }
    std::size_t stride() const { return stride_; }
    std::uint64_t tableCapacity() const { return capacity_; }

    /**
     * Actual live footprint: interned state bytes, slab bookkeeping,
     * and the full table allocation. Untouched tail pages of the
     * newest slab are virtual-only (never written), so they are not
     * charged — this is what `maxMemoryBytes` accounting consumes.
     */
    std::uint64_t memoryBytes() const;

    /** Grow the table (and size the first arena slab, when nothing
     *  has been interned yet) to hold @p expectedStates without
     *  further rehashing. */
    void reserve(std::uint64_t expectedStates);

    /** Insert-probe distance histogram: bucket b counts interns that
     *  probed [2^(b-1), 2^b) slots past their home (bucket 0 = direct
     *  hit). Fills the bench's probe-quality report. */
    static constexpr std::size_t kProbeBuckets = 16;
    const std::array<std::uint64_t, kProbeBuckets> &
    probeHistogram() const
    {
        return probeHist_;
    }

  private:
    struct Slot
    {
        std::uint32_t fp;
        std::uint32_t id;
    };

    static constexpr unsigned kMaxSlabs = 40;
    static constexpr std::uint64_t kMinCapacity = 64;

    std::size_t probeStart(std::uint32_t fp) const
    {
        // Fibonacci spread of the 32-bit fingerprint; growth rehashes
        // from the stored fingerprints alone, no arena reads.
        return static_cast<std::size_t>(
            (fp * 2654435769u) >> (32 - lgCapacity_));
    }

    std::uint32_t pushState(const std::uint8_t *state);
    void growTable();

    std::size_t stride_;
    HashFn hash_;

    std::uint8_t *slabs_[kMaxSlabs] = {};
    unsigned slabsAllocated_ = 0;
    unsigned firstSlabLog2_ = 0;
    std::uint64_t arenaCapacity_ = 0;

    std::vector<Slot> table_;
    std::uint64_t capacity_ = 0;
    unsigned lgCapacity_ = 0;
    std::uint64_t size_ = 0;

    std::array<std::uint64_t, kProbeBuckets> probeHist_{};
};

} // namespace neo

#endif // NEO_VERIF_STATE_STORE_HPP
