/**
 * @file
 * Arena-interned state storage for the exploration engines, with
 * three stacked capacity tiers.
 *
 * Murphi-lineage checkers win capacity battles by refusing to pay
 * per-state heap structure: canonical states live contiguously in
 * bump-allocated slabs (one `numVars()`-stride record each, no vector
 * header, no malloc chunk rounding) and the visited set is a flat
 * open-addressing table of 32-bit fingerprint + 32-bit arena index.
 * The paper's push-button methodology (§4.1) depends on exactly this
 * kind of throughput — the original Neo construction blew a >200 GB
 * budget before it was redesigned — so every engine here (sequential
 * BFS, the sharded parallel explorer, the trace shrinker) dedupes
 * through this store instead of `std::unordered_map<VState, id>`.
 *
 * On top of the plain arena, three capacity tiers stack (ROADMAP
 * "billion-state explorer"):
 *
 *  - StoreTier::Delta — a state is stored as a varint-encoded diff
 *    against an earlier state (its BFS parent when the engine has it
 *    in hand, else the previously interned state), with full-record
 *    anchors every `anchorEvery` hops so any state reconstructs in a
 *    bounded walk. BFS neighbours differ in a handful of variables,
 *    so the per-state payload drops from `stride` bytes to a few.
 *
 *  - StoreTier::Compact — classic Murphi hash compaction: only a
 *    64/128-bit fingerprint per state is kept, no bytes at all. The
 *    mode is deliberately UNSOUND (two distinct states may share a
 *    fingerprint, silently pruning one subtree); the quantified
 *    omission probability is computed by compactOmissionProbability()
 *    and reported in every verdict that used the mode.
 *
 *  - Spill (orthogonal to the tier) — slab and table allocations are
 *    mmap'd, file-backed regions under `spillDir` instead of heap
 *    memory. Cold regions are shed from the process's resident set
 *    (madvise MADV_DONTNEED) and fault back from the page cache on
 *    demand; backing files are unlinked immediately after mapping, so
 *    a crash — SIGKILL included — can never leave stale slab files
 *    behind. memoryBytes() charges only hot regions, which is what
 *    lets the engines' memory-pressure ladder shed to disk BEFORE
 *    shedding trace links or returning EXCEEDED.
 *
 * Concurrency contract: intern() and reserve() require external
 * synchronization (the parallel explorer wraps each shard's store in
 * that shard's mutex). at()/copyTo()/stride() are safe to call
 * WITHOUT the lock for any id whose publication happened-before the
 * call (e.g. an id received through a mutex-guarded work queue): slab
 * pointers live in fixed-size arrays that are never reallocated, and
 * a state's bytes — including every delta record on its anchor chain
 * — are written exactly once, before its id escapes the lock.
 * Shedding a region concurrently with such a read is safe: the
 * mapping stays valid and the kernel faults the page back in.
 */

#ifndef NEO_VERIF_STATE_STORE_HPP
#define NEO_VERIF_STATE_STORE_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "verif/transition_system.hpp"

namespace neo
{

/**
 * 64-bit state hash: 8-byte chunks folded with multiply-xor and a
 * murmur3-style finalizer. Low bits select the parallel explorer's
 * shard, high 32 bits are the visited-table fingerprint, so both
 * halves must avalanche. Roughly 8x fewer data-dependent steps than
 * the byte-wise FNV-1a it replaces — the hash runs once per generated
 * successor, which makes it hot-path.
 */
inline std::uint64_t
stateHash(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                      (static_cast<std::uint64_t>(n) *
                       0xff51afd7ed558ccdULL);
    while (n >= 8) {
        std::uint64_t k;
        std::memcpy(&k, p, 8);
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 29;
        h = (h ^ k) * 0x2545f4914f6cdd1dULL;
        p += 8;
        n -= 8;
    }
    if (n > 0) {
        std::uint64_t k = 0;
        std::memcpy(&k, p, n);
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 29;
        h = (h ^ k) * 0x2545f4914f6cdd1dULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 32;
    return h;
}

/** Independent second 64-bit hash for 128-bit compaction: same mixing
 *  structure, different seed and finalizer order, so the two streams
 *  collide independently. */
inline std::uint64_t
stateHash2(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0x6a09e667f3bcc909ULL ^
                      (static_cast<std::uint64_t>(n) *
                       0xc4ceb9fe1a85ec53ULL);
    while (n >= 8) {
        std::uint64_t k;
        std::memcpy(&k, p, 8);
        k *= 0xc4ceb9fe1a85ec53ULL;
        k ^= k >> 31;
        h = (h ^ k) * 0x9e3779b97f4a7c15ULL;
        p += 8;
        n -= 8;
    }
    if (n > 0) {
        std::uint64_t k = 0;
        std::memcpy(&k, p, n);
        k *= 0xc4ceb9fe1a85ec53ULL;
        k ^= k >> 31;
        h = (h ^ k) * 0x9e3779b97f4a7c15ULL;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

/** How state payloads are represented inside the store. */
enum class StoreTier : std::uint8_t
{
    Plain = 0,   ///< fixed-stride full records (the PR 5 arena)
    Delta = 1,   ///< varint parent-diff records with anchor chains
    Compact = 2, ///< fingerprints only (unsound; quantified omission)
};

const char *storeTierName(StoreTier t);

/**
 * Tier/spill configuration, carried by ExploreLimits into every
 * engine and forwarded verbatim to each StateStore they build.
 */
struct StoreTierOptions
{
    StoreTier tier = StoreTier::Plain;
    /** Fingerprint width for StoreTier::Compact: 64 or 128. */
    unsigned compactBits = 64;
    /** Max delta-chain hops before a full anchor record (Delta). */
    unsigned anchorEvery = 8;
    /** Non-empty enables the mmap-backed cold tier: slabs and the
     *  probe table become file-backed regions under this directory
     *  (files are unlinked right after mapping — a crash leaves no
     *  stale slabs). */
    std::string spillDir;
    /** Resident budget for spillable regions before the LRU starts
     *  shedding old slabs on allocation; 0 = default (256 MB). */
    std::uint64_t hotBytes = 0;
    /** Test-only hash override (forced-collision suites); nullptr
     *  uses stateHash(). */
    std::uint64_t (*hash)(const std::uint8_t *, std::size_t) = nullptr;
};

/**
 * Probability that hash compaction silently omitted at least one
 * state: with n distinct states drawn into a 2^bits fingerprint
 * space, P ≈ 1 - exp(-n(n-1)/2^(bits+1)) (the Stern–Dill birthday
 * bound). This is the number every compact-mode verdict must carry —
 * the mode trades soundness for memory and has to say so.
 */
double compactOmissionProbability(std::uint64_t states, unsigned bits);

/**
 * Interning store: a bump arena of state records plus an
 * open-addressing visited table (linear probing, power-of-two
 * capacity, fingerprint pre-filter before the byte compare).
 *
 * Arena ids are dense 32-bit insertion indices — the engines use them
 * directly as state ids, and index their parent/depth side arrays
 * with them. Slab k holds `firstSlab << k` elements, so a fixed array
 * of slab pointers addresses 2^40+ states without ever reallocating
 * the directory (which is what makes lock-free at() reads sound).
 */
class StateStore
{
  public:
    using HashFn = std::uint64_t (*)(const std::uint8_t *,
                                     std::size_t);

    /** Arena id sentinel for an empty table slot / "no delta base". */
    static constexpr std::uint32_t kNoId = 0xffffffffu;

    /**
     * @param stride bytes per state (`ts.numVars()`)
     * @param expectedStates pre-size the table and first slab for
     *        this many states (0 = start minimal and grow)
     * @param hash override the state hash — tests inject degenerate
     *        hashes to force fingerprint collisions; nullptr uses
     *        stateHash() (opts.hash, when set, wins over this)
     * @param opts capacity tier + spill configuration
     */
    explicit StateStore(std::size_t stride,
                        std::uint64_t expectedStates = 0,
                        HashFn hash = nullptr,
                        const StoreTierOptions &opts = {});

    StateStore(const StateStore &) = delete;
    StateStore &operator=(const StateStore &) = delete;
    StateStore(StateStore &&) = delete;

    ~StateStore();

    /**
     * Intern one canonical state: @return (arena id, freshly
     * inserted). A state equal byte-for-byte to an already-interned
     * one returns the existing id — the fingerprint pre-filter
     * rejects almost all non-equal probes, and a full byte compare
     * (reconstructing through the delta codec when needed) confirms
     * every fingerprint hit, so hash collisions can never conflate
     * two distinct states — except in Compact tier, where the hash
     * IS the identity and conflation is the documented trade.
     */
    std::pair<std::uint32_t, bool> intern(const std::uint8_t *state)
    {
        return internHashed(state, hash_(state, stride_));
    }
    std::pair<std::uint32_t, bool> intern(const VState &s)
    {
        return intern(s.data());
    }
    /** Intern with an explicit delta base (see internHashed below);
     *  hashes internally. */
    std::pair<std::uint32_t, bool>
    intern(const std::uint8_t *state, std::uint32_t baseId,
           const std::uint8_t *baseBytes)
    {
        return internHashed(state, hash_(state, stride_), baseId,
                            baseBytes);
    }
    /** Intern with a precomputed stateHash() value — the parallel
     *  explorer hashes once for shard selection and reuses it. The
     *  delta base defaults to the most recently interned state. */
    std::pair<std::uint32_t, bool>
    internHashed(const std::uint8_t *state, std::uint64_t hash)
    {
        return internHashed(state, hash, kNoId, nullptr);
    }
    /**
     * Intern with an explicit delta base (Delta tier): @p baseId is
     * an id already interned HERE and @p baseBytes its full bytes
     * (the BFS engines have the parent state in hand when expanding,
     * so no reconstruction is paid on the hot path). kNoId/nullptr
     * falls back to the previously interned state; ignored outside
     * the Delta tier.
     */
    std::pair<std::uint32_t, bool>
    internHashed(const std::uint8_t *state, std::uint64_t hash,
                 std::uint32_t baseId, const std::uint8_t *baseBytes);

    /** Insert a bare fingerprint (Compact tier resume path): dedup
     *  and id assignment exactly as if the hashed state were
     *  interned. @p hi is ignored for 64-bit fingerprints. */
    std::pair<std::uint32_t, bool> insertHash(std::uint64_t lo,
                                              std::uint64_t hi);

    /**
     * Probe-only lookup: the id @p state would dedup to, or kNoId if
     * it has never been interned. Never inserts, never grows the
     * table, leaves the probe histogram untouched. Same external-
     * synchronization contract as intern() (it reads the table the
     * interns mutate) — the parallel explorer calls it under the
     * shard mutex to decide whether a successor needs one of the
     * maxStates insertion tokens before committing to an intern.
     */
    std::uint32_t lookupHashed(const std::uint8_t *state,
                               std::uint64_t hash) const;

    /**
     * Batch intern under ONE external lock acquisition: interns
     * @p states[0..n) (hashes precomputed in @p hashes) in order and
     * writes (id, inserted) per element to @p out. All elements share
     * one delta base — @p baseId/@p baseBytes exactly as in
     * internHashed(); the parallel explorer groups a dequeued state's
     * successors by shard and passes the parent once per group.
     * Duplicates WITHIN the batch dedup exactly like repeated
     * intern() calls (the second occurrence returns the first's id),
     * so batch-of-N is id-for-id identical to N single interns — the
     * property tests/test_state_store.cpp pins.
     */
    void internBatchHashed(const std::uint8_t *const *states,
                           const std::uint64_t *hashes, std::size_t n,
                           std::uint32_t baseId,
                           const std::uint8_t *baseBytes,
                           std::pair<std::uint32_t, bool> *out);

    /**
     * Bytes of an interned state; stable for the store's lifetime.
     * Plain tier only — Delta records must be reconstructed through
     * copyTo(), and Compact stores no bytes at all (both fatal).
     */
    const std::uint8_t *at(std::uint32_t id) const
    {
        if (tier_ != StoreTier::Plain)
            badTierAt();
        return arenaPtr(states_, id);
    }

    /** Full bytes of state @p id into @p out; reconstructs through
     *  the anchor chain in the Delta tier. Fatal in Compact tier. */
    void copyTo(std::uint32_t id, VState &out) const;

    /** Stored fingerprint of state @p id (Compact tier only). */
    std::pair<std::uint64_t, std::uint64_t>
    hashAt(std::uint32_t id) const;

    /** Delta-chain hops from @p id to its anchor (0 = @p id is an
     *  anchor). Bounded by anchorEvery; 0 outside the Delta tier. */
    unsigned hopOf(std::uint32_t id) const;

    std::uint64_t size() const { return size_; }
    std::size_t stride() const { return stride_; }
    std::uint64_t tableCapacity() const { return capacity_; }
    StoreTier tier() const { return tier_; }
    bool spillEnabled() const { return spill_; }
    unsigned compactBits() const { return compactBits_; }
    unsigned anchorEvery() const { return anchorEvery_; }

    /**
     * Actual live footprint charged against `maxMemoryBytes`:
     * interned payload bytes (state records, delta records + their
     * anchor index, or fingerprints), slab bookkeeping, and the full
     * table allocation. Untouched tail pages of the newest slab are
     * virtual-only (never written), so they are not charged — and
     * neither are regions shed to the spill tier: a cold mmap'd slab
     * costs page cache, not process residency. Pages the kernel
     * faults back in on cold reads are deliberately not re-charged;
     * the budget governs the hot working set the store itself pins.
     */
    std::uint64_t memoryBytes() const;

    /**
     * Shed every file-backed region (slabs AND the probe table) from
     * the resident set: data stays intact in the page cache / on
     * disk and faults back on demand. @return regions shed. The
     * engines call this as the memory-pressure step BEFORE shedding
     * trace links. No-op (0) when spill is disabled.
     */
    std::uint64_t shedCold();

    /** Cumulative regions shed (LRU evictions + shedCold calls). */
    std::uint64_t spillSheds() const { return spillSheds_; }

    /** Grow the table (and size the first arena slab, when nothing
     *  has been interned yet) to hold @p expectedStates without
     *  further rehashing. */
    void reserve(std::uint64_t expectedStates);

    /** Insert-probe distance histogram: bucket b counts interns that
     *  probed [2^(b-1), 2^b) slots past their home (bucket 0 = direct
     *  hit). Fills the bench's probe-quality report. */
    static constexpr std::size_t kProbeBuckets = 16;
    const std::array<std::uint64_t, kProbeBuckets> &
    probeHistogram() const
    {
        return probeHist_;
    }

  private:
    struct Slot
    {
        std::uint32_t fp;
        std::uint32_t id;
    };

    /** One spillable allocation: an anonymous heap block or an
     *  mmap'd, already-unlinked file under spillDir. */
    struct Region
    {
        std::uint8_t *ptr = nullptr;
        std::uint64_t bytes = 0;
        bool fileBacked = false;
        bool hot = true;
        bool freed = false;
    };

    /** A geometric slab family: fixed pointer directory (never
     *  reallocated — the lock-free read guarantee), element-granular
     *  addressing shared by states, delta bytes, the delta index and
     *  compact fingerprints. */
    struct Arena
    {
        std::uint8_t *slabs[40] = {};
        int regionOf[40];
        unsigned nSlabs = 0;
        unsigned firstLog2 = 10;
        std::uint64_t capacity = 0; ///< elements
        std::size_t elemSize = 1;
    };

    static constexpr unsigned kMaxSlabs = 40;
    static constexpr std::uint64_t kMinCapacity = 64;

    std::size_t probeStart(std::uint32_t fp) const
    {
        // Fibonacci spread of the 32-bit fingerprint; growth rehashes
        // from the stored fingerprints alone, no arena reads.
        return static_cast<std::size_t>(
            (fp * 2654435769u) >> (32 - lgCapacity_));
    }

    // Region/spill plumbing (intern-side, externally synchronized).
    int allocRegion(std::uint64_t bytes, bool spillable);
    void freeRegion(int r);
    void shedRegion(int r);
    void maintainHotBudget(int keep);

    // Arena plumbing. Element address: slab k holds
    // `1 << (firstLog2 + k)` elements, so slab k's first element is
    // `((1 << k) - 1) << firstLog2` and the owning slab of idx is
    // found with one bit-scan — no division, no directory realloc.
    std::uint8_t *arenaPtr(const Arena &a, std::uint64_t idx) const
    {
        const std::uint64_t q = (idx >> a.firstLog2) + 1;
        const unsigned k =
            static_cast<unsigned>(std::bit_width(q)) - 1;
        const std::uint64_t base = ((1ULL << k) - 1)
                                   << a.firstLog2;
        return a.slabs[k] + (idx - base) * a.elemSize;
    }
    [[noreturn]] void badTierAt() const;
    void arenaGrow(Arena &a, bool spillable);
    std::uint64_t arenaTouchedBytes(const Arena &a,
                                    std::uint64_t usedElems,
                                    bool hotOnly) const;

    // Tier internals.
    std::uint32_t pushPlain(const std::uint8_t *state);
    std::uint32_t pushDelta(const std::uint8_t *state,
                            std::uint32_t baseId,
                            const std::uint8_t *baseBytes);
    std::uint32_t pushCompact(std::uint64_t lo, std::uint64_t hi);
    void reconstruct(std::uint32_t id, std::uint8_t *out) const;
    bool equalsStored(std::uint32_t id,
                      const std::uint8_t *state) const;
    void allocTable(std::uint64_t capacity);
    void growTable();

    std::size_t stride_;
    HashFn hash_;
    StoreTier tier_ = StoreTier::Plain;
    unsigned compactBits_ = 64;
    unsigned anchorEvery_ = 8;
    bool spill_ = false;
    std::string spillDir_;
    std::uint64_t hotBudget_ = 0;
    std::uint64_t spillSheds_ = 0;
    std::uint64_t hotSpillBytes_ = 0;

    std::vector<Region> regions_;

    Arena states_;  ///< Plain: stride-sized records
    Arena bytes_;   ///< Delta: varint records, byte-granular
    Arena index_;   ///< Delta: 8-byte (offset<<8 | hop) per id
    Arena hashes_;  ///< Compact: 8/16-byte fingerprints
    std::uint64_t byteTail_ = 0; ///< Delta: next free arena offset

    /** Previously interned state's bytes (Delta): the fallback delta
     *  base when the caller has no parent in hand (cross-shard
     *  parents in the parallel explorer). */
    std::vector<std::uint8_t> lastState_;
    std::uint32_t lastId_ = kNoId;
    /** Reconstruction scratch for the intern-side byte compare. */
    mutable std::vector<std::uint8_t> cmpBuf_;

    Slot *table_ = nullptr;
    int tableRegion_ = -1;
    std::uint64_t capacity_ = 0;
    unsigned lgCapacity_ = 0;
    std::uint64_t size_ = 0;

    std::array<std::uint64_t, kProbeBuckets> probeHist_{};
};

} // namespace neo

#endif // NEO_VERIF_STATE_STORE_HPP
