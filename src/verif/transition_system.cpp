#include "transition_system.hpp"

#include <sstream>

namespace neo
{

namespace
{

/** Synthesized function forms of flat terms — the single semantic
 *  definition both the lambdas-by-synthesis and CompiledRules' table
 *  scan share (CompiledRules inlines the identical switch). */
bool
evalGuardTerms(const std::vector<GuardTerm> &terms, const VState &s)
{
    for (const GuardTerm &t : terms) {
        const std::uint8_t v = s[t.var];
        bool ok = false;
        switch (t.op) {
          case GuardTerm::Op::Eq: ok = v == t.imm; break;
          case GuardTerm::Op::Ne: ok = v != t.imm; break;
          case GuardTerm::Op::Lt: ok = v < t.imm; break;
          case GuardTerm::Op::Le: ok = v <= t.imm; break;
          case GuardTerm::Op::Gt: ok = v > t.imm; break;
          case GuardTerm::Op::Ge: ok = v >= t.imm; break;
        }
        if (!ok)
            return false;
    }
    return true;
}

void
applyEffectTerms(const std::vector<EffectTerm> &terms, VState &s)
{
    for (const EffectTerm &t : terms)
        s[t.dst] = t.op == EffectTerm::Op::Set ? t.imm : s[t.src];
}

} // namespace

void
TransitionSystem::addRule(std::string name, ActionKind kind,
                          std::vector<GuardTerm> guard,
                          std::vector<EffectTerm> effect)
{
    Rule r;
    r.name = std::move(name);
    r.kind = kind;
    r.guardTerms = std::move(guard);
    r.effectTerms = std::move(effect);
    r.guardFlat = true;
    r.effectFlat = true;
    r.guard = [terms = r.guardTerms](const VState &s) {
        return evalGuardTerms(terms, s);
    };
    r.effect = [terms = r.effectTerms](VState &s) {
        applyEffectTerms(terms, s);
    };
    rules_.push_back(std::move(r));
}

void
TransitionSystem::addRule(std::string name, ActionKind kind,
                          Guard guard, std::vector<EffectTerm> effect)
{
    Rule r;
    r.name = std::move(name);
    r.kind = kind;
    r.guard = std::move(guard);
    r.effectTerms = std::move(effect);
    r.effectFlat = true;
    r.effect = [terms = r.effectTerms](VState &s) {
        applyEffectTerms(terms, s);
    };
    rules_.push_back(std::move(r));
}

CompiledRules::CompiledRules(const TransitionSystem &ts)
{
    const auto &rules = ts.rules();
    rules_.reserve(rules.size());
    for (const auto &r : rules) {
        Entry e;
        e.guardFlat = r.guardFlat;
        e.effectFlat = r.effectFlat;
        if (r.guardFlat) {
            e.gBegin = static_cast<std::uint32_t>(gterms_.size());
            gterms_.insert(gterms_.end(), r.guardTerms.begin(),
                           r.guardTerms.end());
            e.gEnd = static_cast<std::uint32_t>(gterms_.size());
        } else {
            e.guardFn = &r.guard;
        }
        if (r.effectFlat) {
            e.eBegin = static_cast<std::uint32_t>(eterms_.size());
            eterms_.insert(eterms_.end(), r.effectTerms.begin(),
                           r.effectTerms.end());
            e.eEnd = static_cast<std::uint32_t>(eterms_.size());
        } else {
            e.effectFn = &r.effect;
        }
        rules_.push_back(e);
    }
}

std::size_t
TransitionSystem::varIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < varNames_.size(); ++i) {
        if (varNames_[i] == name)
            return i;
    }
    neo_fatal("no such model variable: ", name);
}

bool
TransitionSystem::dropInvariant(const std::string &name)
{
    for (auto it = invariants_.begin(); it != invariants_.end(); ++it) {
        if (it->name == name) {
            invariants_.erase(it);
            return true;
        }
    }
    return false;
}

TransitionSystem::Rule *
TransitionSystem::findRule(const std::string &name)
{
    for (auto &r : rules_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::string
TransitionSystem::describe(const VState &s) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i)
            os << " ";
        os << varNames_[i] << "=" << static_cast<int>(s[i]);
    }
    return os.str();
}

} // namespace neo
