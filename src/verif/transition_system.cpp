#include "transition_system.hpp"

#include <sstream>

namespace neo
{

std::string
TransitionSystem::describe(const VState &s) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i)
            os << " ";
        os << varNames_[i] << "=" << static_cast<int>(s[i]);
    }
    return os.str();
}

} // namespace neo
