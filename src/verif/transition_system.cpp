#include "transition_system.hpp"

#include <sstream>

namespace neo
{

std::size_t
TransitionSystem::varIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < varNames_.size(); ++i) {
        if (varNames_[i] == name)
            return i;
    }
    neo_fatal("no such model variable: ", name);
}

bool
TransitionSystem::dropInvariant(const std::string &name)
{
    for (auto it = invariants_.begin(); it != invariants_.end(); ++it) {
        if (it->name == name) {
            invariants_.erase(it);
            return true;
        }
    }
    return false;
}

TransitionSystem::Rule *
TransitionSystem::findRule(const std::string &name)
{
    for (auto &r : rules_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::string
TransitionSystem::describe(const VState &s) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i)
            os << " ";
        os << varNames_[i] << "=" << static_cast<int>(s[i]);
    }
    return os.str();
}

} // namespace neo
