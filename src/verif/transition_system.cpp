#include "transition_system.hpp"

#include <algorithm>
#include <sstream>

namespace neo
{

namespace
{

/** Synthesized function forms of flat terms — the single semantic
 *  definition both the lambdas-by-synthesis and CompiledRules' table
 *  scan share (CompiledRules inlines the identical switch). */
bool
evalGuardTerms(const std::vector<GuardTerm> &terms, const VState &s)
{
    for (const GuardTerm &t : terms) {
        const std::uint8_t v = s[t.var];
        bool ok = false;
        switch (t.op) {
          case GuardTerm::Op::Eq: ok = v == t.imm; break;
          case GuardTerm::Op::Ne: ok = v != t.imm; break;
          case GuardTerm::Op::Lt: ok = v < t.imm; break;
          case GuardTerm::Op::Le: ok = v <= t.imm; break;
          case GuardTerm::Op::Gt: ok = v > t.imm; break;
          case GuardTerm::Op::Ge: ok = v >= t.imm; break;
        }
        if (!ok)
            return false;
    }
    return true;
}

void
applyEffectTerms(const std::vector<EffectTerm> &terms, VState &s)
{
    for (const EffectTerm &t : terms)
        s[t.dst] = t.op == EffectTerm::Op::Set ? t.imm : s[t.src];
}

} // namespace

void
TransitionSystem::addRule(std::string name, ActionKind kind,
                          std::vector<GuardTerm> guard,
                          std::vector<EffectTerm> effect)
{
    Rule r;
    r.name = std::move(name);
    r.kind = kind;
    r.guardTerms = std::move(guard);
    r.effectTerms = std::move(effect);
    r.guardFlat = true;
    r.effectFlat = true;
    r.guard = [terms = r.guardTerms](const VState &s) {
        return evalGuardTerms(terms, s);
    };
    r.effect = [terms = r.effectTerms](VState &s) {
        applyEffectTerms(terms, s);
    };
    rules_.push_back(std::move(r));
}

void
TransitionSystem::addRule(std::string name, ActionKind kind,
                          Guard guard, std::vector<EffectTerm> effect)
{
    Rule r;
    r.name = std::move(name);
    r.kind = kind;
    r.guard = std::move(guard);
    r.effectTerms = std::move(effect);
    r.effectFlat = true;
    r.effect = [terms = r.effectTerms](VState &s) {
        applyEffectTerms(terms, s);
    };
    rules_.push_back(std::move(r));
}

void
TransitionSystem::addInvariant(std::string name,
                               std::vector<GuardTerm> terms)
{
    Invariant inv;
    inv.name = std::move(name);
    inv.terms = std::move(terms);
    inv.flat = true;
    inv.check = [terms = inv.terms](const VState &s) {
        return evalGuardTerms(terms, s);
    };
    inv.reads.reserve(inv.terms.size());
    for (const GuardTerm &t : inv.terms)
        inv.reads.push_back(t.var);
    inv.readsDeclared = true;
    invariants_.push_back(std::move(inv));
}

void
TransitionSystem::addInvariant(std::string name, Check check,
                               std::vector<std::uint16_t> reads)
{
    Invariant inv;
    inv.name = std::move(name);
    inv.check = std::move(check);
    inv.reads = std::move(reads);
    inv.readsDeclared = true;
    invariants_.push_back(std::move(inv));
}

void
TransitionSystem::declareGuardReads(const std::string &ruleName,
                                    std::vector<std::uint16_t> vars)
{
    Rule *r = findRule(ruleName);
    if (r == nullptr)
        neo_fatal("declareGuardReads: no such rule: ", ruleName);
    r->guardReads = std::move(vars);
    r->guardReadsDeclared = true;
}

CompiledRules::CompiledRules(const TransitionSystem &ts)
{
    const auto &rules = ts.rules();
    rules_.reserve(rules.size());
    for (const auto &r : rules) {
        Entry e;
        e.guardFlat = r.guardFlat;
        e.effectFlat = r.effectFlat;
        if (r.guardFlat) {
            e.gBegin = static_cast<std::uint32_t>(gterms_.size());
            gterms_.insert(gterms_.end(), r.guardTerms.begin(),
                           r.guardTerms.end());
            e.gEnd = static_cast<std::uint32_t>(gterms_.size());
        } else {
            e.guardFn = &r.guard;
        }
        if (r.effectFlat) {
            e.eBegin = static_cast<std::uint32_t>(eterms_.size());
            eterms_.insert(eterms_.end(), r.effectTerms.begin(),
                           r.effectTerms.end());
            e.eEnd = static_cast<std::uint32_t>(eterms_.size());
            maxEffectTerms_ =
                std::max(maxEffectTerms_, r.effectTerms.size());
        } else {
            e.effectFn = &r.effect;
        }
        rules_.push_back(e);
    }
}

namespace
{

/** Set-all helper with the tail word masked to @p n valid bits, so
 *  iterating a conservative row never yields an out-of-range index. */
void
setAllBits(std::uint64_t *row, std::size_t words, std::size_t n)
{
    for (std::size_t w = 0; w < words; ++w)
        row[w] = ~0ULL;
    if (n % 64 != 0 && words != 0)
        row[words - 1] = (1ULL << (n % 64)) - 1;
    if (n == 0)
        row[0] = 0;
}

bool
bitsIntersect(const std::uint64_t *a, const std::uint64_t *b,
              std::size_t words)
{
    for (std::size_t w = 0; w < words; ++w) {
        if ((a[w] & b[w]) != 0)
            return true;
    }
    return false;
}

} // namespace

RuleDepIndex::RuleDepIndex(const TransitionSystem &ts)
{
    const auto &rules = ts.rules();
    const auto &invs = ts.invariants();
    nRules_ = rules.size();
    nInvs_ = invs.size();
    // At least one word per row, so affected*() pointers stay valid
    // even for rule- or invariant-free systems.
    ruleWords_ = nRules_ == 0 ? 1 : (nRules_ + 63) / 64;
    invWords_ = nInvs_ == 0 ? 1 : (nInvs_ + 63) / 64;
    const std::size_t nVars = ts.numVars();
    const std::size_t varWords = nVars == 0 ? 1 : (nVars + 63) / 64;
    auto setVar = [&](std::vector<std::uint64_t> &m, std::size_t row,
                      std::size_t var) {
        m[row * varWords + (var >> 6)] |= 1ULL << (var & 63);
    };

    // Pass 1: per-rule read/write variable sets, per-invariant read
    // sets, with "unknown" flags for the fallback forms.
    std::vector<std::uint64_t> reads(nRules_ * varWords, 0);
    std::vector<std::uint64_t> writes(nRules_ * varWords, 0);
    std::vector<std::uint64_t> invReads(nInvs_ * varWords, 0);
    readUnknown_.assign(nRules_, 0);
    writeUnknown_.assign(nRules_, 0);
    std::vector<std::uint8_t> invUnknown(nInvs_, 0);
    for (std::size_t r = 0; r < nRules_; ++r) {
        const auto &rule = rules[r];
        if (rule.guardFlat) {
            for (const GuardTerm &t : rule.guardTerms)
                setVar(reads, r, t.var);
        } else if (rule.guardReadsDeclared) {
            for (const std::uint16_t v : rule.guardReads)
                setVar(reads, r, v);
        } else {
            readUnknown_[r] = 1;
        }
        if (rule.effectFlat) {
            // CopyVar READS src, but effect reads never invalidate a
            // guard — only the written (dst) variables matter here.
            for (const EffectTerm &t : rule.effectTerms)
                setVar(writes, r, t.dst);
        } else {
            writeUnknown_[r] = 1;
        }
    }
    for (std::size_t i = 0; i < nInvs_; ++i) {
        if (invs[i].readsDeclared) {
            for (const std::uint16_t v : invs[i].reads)
                setVar(invReads, i, v);
        } else {
            invUnknown[i] = 1;
        }
    }

    // Pass 2: invert into per-rule affected-rule / affected-invariant
    // bitsets. O(R^2 * varWords) at build time, paid once per run.
    affRules_.assign(nRules_ * ruleWords_, 0);
    affInvs_.assign(nRules_ * invWords_, 0);
    affRuleCount_.assign(nRules_, 0);
    for (std::size_t r = 0; r < nRules_; ++r) {
        std::uint64_t *rowR = affRules_.data() + r * ruleWords_;
        std::uint64_t *rowI = affInvs_.data() + r * invWords_;
        if (writeUnknown_[r]) {
            setAllBits(rowR, ruleWords_, nRules_);
            setAllBits(rowI, invWords_, nInvs_);
        } else {
            const std::uint64_t *w = writes.data() + r * varWords;
            for (std::size_t q = 0; q < nRules_; ++q) {
                if (readUnknown_[q] ||
                    bitsIntersect(w, reads.data() + q * varWords,
                                  varWords))
                    rowR[q >> 6] |= 1ULL << (q & 63);
            }
            for (std::size_t i = 0; i < nInvs_; ++i) {
                if (invUnknown[i] ||
                    bitsIntersect(w, invReads.data() + i * varWords,
                                  varWords))
                    rowI[i >> 6] |= 1ULL << (i & 63);
            }
        }
        std::uint32_t cnt = 0;
        for (std::size_t w = 0; w < ruleWords_; ++w)
            cnt += static_cast<std::uint32_t>(
                __builtin_popcountll(rowR[w]));
        affRuleCount_[r] = cnt;
    }
}

double
RuleDepIndex::avgAffectedRules() const
{
    if (nRules_ == 0)
        return 0.0;
    double sum = 0.0;
    for (const std::uint32_t c : affRuleCount_)
        sum += c;
    return sum / static_cast<double>(nRules_);
}

std::size_t
TransitionSystem::varIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < varNames_.size(); ++i) {
        if (varNames_[i] == name)
            return i;
    }
    neo_fatal("no such model variable: ", name);
}

bool
TransitionSystem::dropInvariant(const std::string &name)
{
    for (auto it = invariants_.begin(); it != invariants_.end(); ++it) {
        if (it->name == name) {
            invariants_.erase(it);
            return true;
        }
    }
    return false;
}

TransitionSystem::Rule *
TransitionSystem::findRule(const std::string &name)
{
    for (auto &r : rules_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::string
TransitionSystem::describe(const VState &s) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i)
            os << " ";
        os << varNames_[i] << "=" << static_cast<int>(s[i]);
    }
    return os.str();
}

} // namespace neo
