/**
 * @file
 * Guarded-command transition systems for the model checker.
 *
 * This is the Murphi/Cubicle-workalike substrate the Neo verification
 * methodology runs on: a finite vector of small-domain variables, a
 * set of named guarded rules (each tagged input / output / internal in
 * the Neo sense), and a set of invariants. Protocol models (the flat
 * Closed and Open Neo Systems of §2.5) are built against this.
 */

#ifndef NEO_VERIF_TRANSITION_SYSTEM_HPP
#define NEO_VERIF_TRANSITION_SYSTEM_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "neo/execution.hpp"
#include "sim/logging.hpp"

namespace neo
{

/** A model-checker state: one byte per declared variable. */
using VState = std::vector<std::uint8_t>;

/**
 * Declarative finite transition system.
 */
class TransitionSystem
{
  public:
    using Guard = std::function<bool(const VState &)>;
    using Effect = std::function<void(VState &)>;
    using Check = std::function<bool(const VState &)>;
    /** Maps a state to its canonical symmetry representative. */
    using Canonicalizer = std::function<void(VState &)>;
    /** Permission summary of a state (the Neo sumC output). */
    using Summarizer = std::function<Perm(const VState &)>;

    struct Rule
    {
        std::string name;
        ActionKind kind = ActionKind::Internal;
        Guard guard;
        Effect effect;
    };

    struct Invariant
    {
        std::string name;
        Check check;
    };

    /** Declare a variable; @return its index into the state vector. */
    std::size_t
    addVar(std::string name, std::uint8_t init = 0)
    {
        varNames_.push_back(std::move(name));
        init_.push_back(init);
        return varNames_.size() - 1;
    }

    void
    addRule(std::string name, ActionKind kind, Guard guard, Effect effect)
    {
        rules_.push_back(
            Rule{std::move(name), kind, std::move(guard),
                 std::move(effect)});
    }

    void
    addInvariant(std::string name, Check check)
    {
        invariants_.push_back(Invariant{std::move(name),
                                        std::move(check)});
    }

    /** Remove an invariant by name; @return whether it existed. Used
     *  by corpus mutants whose protocol change makes one bookkeeping
     *  invariant vacuous, so the remaining violation is unique. */
    bool dropInvariant(const std::string &name);

    void setCanonicalizer(Canonicalizer c) { canon_ = std::move(c); }
    void setSummarizer(Summarizer s) { sum_ = std::move(s); }

    VState initialState() const { return init_; }
    std::size_t numVars() const { return init_.size(); }
    const std::vector<Rule> &rules() const { return rules_; }
    const std::vector<Invariant> &invariants() const
    {
        return invariants_;
    }
    const Canonicalizer &canonicalizer() const { return canon_; }
    const Summarizer &summarizer() const { return sum_; }
    const std::string &varName(std::size_t i) const
    {
        return varNames_.at(i);
    }

    /** Index of a declared variable; fatal if absent. The mutation
     *  corpus addresses variables by name so mutants survive layout
     *  changes in the model builders. */
    std::size_t varIndex(const std::string &name) const;

    /** Mutable rule lookup by exact name; nullptr if absent. Exists
     *  for the mutant registry, which surgically rewrites guards and
     *  effects of otherwise-correct models. */
    Rule *findRule(const std::string &name);

    /** Render a state for counterexample traces. */
    std::string describe(const VState &s) const;

  private:
    std::vector<std::string> varNames_;
    VState init_;
    std::vector<Rule> rules_;
    std::vector<Invariant> invariants_;
    Canonicalizer canon_;
    Summarizer sum_;
};

} // namespace neo

#endif // NEO_VERIF_TRANSITION_SYSTEM_HPP
