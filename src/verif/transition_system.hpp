/**
 * @file
 * Guarded-command transition systems for the model checker.
 *
 * This is the Murphi/Cubicle-workalike substrate the Neo verification
 * methodology runs on: a finite vector of small-domain variables, a
 * set of named guarded rules (each tagged input / output / internal in
 * the Neo sense), and a set of invariants. Protocol models (the flat
 * Closed and Open Neo Systems of §2.5) are built against this.
 */

#ifndef NEO_VERIF_TRANSITION_SYSTEM_HPP
#define NEO_VERIF_TRANSITION_SYSTEM_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "neo/execution.hpp"
#include "sim/logging.hpp"

namespace neo
{

/** A model-checker state: one byte per declared variable. */
using VState = std::vector<std::uint8_t>;

/**
 * One conjunct of a flat (declarative) guard: `s[var] OP imm`. A
 * guard expressed as a vector of these is a pure conjunction the
 * engines can evaluate as a tight table scan — no std::function
 * indirect call, no captured-lambda heap hop. Disjunctions and
 * quantified conditions stay as std::function fallbacks.
 */
struct GuardTerm
{
    enum class Op : std::uint8_t
    {
        Eq, ///< s[var] == imm
        Ne, ///< s[var] != imm
        Lt, ///< s[var] <  imm
        Le, ///< s[var] <= imm
        Gt, ///< s[var] >  imm
        Ge, ///< s[var] >= imm
    };
    std::uint16_t var = 0;
    Op op = Op::Eq;
    std::uint8_t imm = 0;
};

/**
 * One step of a flat effect, applied in sequence: `s[dst] = imm`
 * (Set) or `s[dst] = s[src]` (CopyVar, reading the CURRENT, partially
 * updated state — exactly like the statement sequence in a lambda).
 */
struct EffectTerm
{
    enum class Op : std::uint8_t
    {
        Set,     ///< s[dst] = imm
        CopyVar, ///< s[dst] = s[src]
    };
    std::uint16_t dst = 0;
    Op op = Op::Set;
    std::uint16_t src = 0;
    std::uint8_t imm = 0;
};

/**
 * Declarative finite transition system.
 */
class TransitionSystem
{
  public:
    using Guard = std::function<bool(const VState &)>;
    using Effect = std::function<void(VState &)>;
    using Check = std::function<bool(const VState &)>;
    /** Maps a state to its canonical symmetry representative. */
    using Canonicalizer = std::function<void(VState &)>;
    /** Permission summary of a state (the Neo sumC output). */
    using Summarizer = std::function<Perm(const VState &)>;

    struct Rule
    {
        std::string name;
        ActionKind kind = ActionKind::Internal;
        Guard guard;
        Effect effect;
        /** Flat term forms, when the model declared them (guardFlat /
         *  effectFlat distinguish "flat with zero terms" from "not
         *  expressible"). The `guard`/`effect` functions above are
         *  ALWAYS valid — synthesized from the terms when the rule
         *  was declared flat — so replay, fingerprinting and the
         *  mutant registry never care which form a rule uses. */
        std::vector<GuardTerm> guardTerms;
        std::vector<EffectTerm> effectTerms;
        bool guardFlat = false;
        bool effectFlat = false;

        /** Rewrite the guard/effect with an opaque function (the
         *  mutant registry's surgical rewrites). MUST be used instead
         *  of assigning the member directly: a stale flat form would
         *  make CompiledRules fire the pre-mutation behavior. */
        void
        overrideGuard(Guard g)
        {
            guard = std::move(g);
            guardTerms.clear();
            guardFlat = false;
        }
        void
        overrideEffect(Effect e)
        {
            effect = std::move(e);
            effectTerms.clear();
            effectFlat = false;
        }
    };

    struct Invariant
    {
        std::string name;
        Check check;
    };

    /** Declare a variable; @return its index into the state vector. */
    std::size_t
    addVar(std::string name, std::uint8_t init = 0)
    {
        varNames_.push_back(std::move(name));
        init_.push_back(init);
        return varNames_.size() - 1;
    }

    void
    addRule(std::string name, ActionKind kind, Guard guard, Effect effect)
    {
        Rule r;
        r.name = std::move(name);
        r.kind = kind;
        r.guard = std::move(guard);
        r.effect = std::move(effect);
        rules_.push_back(std::move(r));
    }

    /** Declare a rule in flat term form. The function forms are
     *  synthesized from the terms, so every consumer that only knows
     *  `Rule::guard`/`Rule::effect` (trace replay, fingerprints,
     *  mutants) behaves identically; the engines' CompiledRules
     *  evaluates the terms directly, skipping the std::function
     *  dispatch on the hot path. */
    void addRule(std::string name, ActionKind kind,
                 std::vector<GuardTerm> guard,
                 std::vector<EffectTerm> effect);

    /** Flat rule with a fallback (non-flat) guard — for rules whose
     *  condition needs a disjunction or quantifier but whose effect
     *  is a plain assignment sequence. */
    void addRule(std::string name, ActionKind kind, Guard guard,
                 std::vector<EffectTerm> effect);

    void
    addInvariant(std::string name, Check check)
    {
        invariants_.push_back(Invariant{std::move(name),
                                        std::move(check)});
    }

    /** Remove an invariant by name; @return whether it existed. Used
     *  by corpus mutants whose protocol change makes one bookkeeping
     *  invariant vacuous, so the remaining violation is unique. */
    bool dropInvariant(const std::string &name);

    void setCanonicalizer(Canonicalizer c) { canon_ = std::move(c); }
    void setSummarizer(Summarizer s) { sum_ = std::move(s); }

    VState initialState() const { return init_; }
    std::size_t numVars() const { return init_.size(); }
    const std::vector<Rule> &rules() const { return rules_; }
    const std::vector<Invariant> &invariants() const
    {
        return invariants_;
    }
    const Canonicalizer &canonicalizer() const { return canon_; }
    const Summarizer &summarizer() const { return sum_; }
    const std::string &varName(std::size_t i) const
    {
        return varNames_.at(i);
    }

    /** Index of a declared variable; fatal if absent. The mutation
     *  corpus addresses variables by name so mutants survive layout
     *  changes in the model builders. */
    std::size_t varIndex(const std::string &name) const;

    /** Mutable rule lookup by exact name; nullptr if absent. Exists
     *  for the mutant registry, which surgically rewrites guards and
     *  effects of otherwise-correct models. */
    Rule *findRule(const std::string &name);

    /** Render a state for counterexample traces. */
    std::string describe(const VState &s) const;

  private:
    std::vector<std::string> varNames_;
    VState init_;
    std::vector<Rule> rules_;
    std::vector<Invariant> invariants_;
    Canonicalizer canon_;
    Summarizer sum_;
};

/**
 * Flat guard/effect tables compiled from a TransitionSystem's rules.
 *
 * Rules declared in term form evaluate as scans over two contiguous
 * term arrays (one branch-predictable loop, no virtual or indirect
 * dispatch); rules that only have function forms fall back to calling
 * them through a raw pointer. Every engine hot loop (sequential BFS,
 * the parallel workers, the random-walk falsifier) fires rules
 * through this table, so the two forms are behaviorally
 * indistinguishable by construction — addRule's synthesized functions
 * and the term evaluation here implement the same semantics, and the
 * golden-count suite pins it.
 *
 * Lifetime: holds pointers into @p ts; the system must outlive the
 * table. Immutable after construction, so one instance is safe to
 * share across worker threads. Rules must not be mutated (e.g. by the
 * mutant registry) after compilation — compile after mutation.
 */
class CompiledRules
{
  public:
    explicit CompiledRules(const TransitionSystem &ts);

    std::size_t size() const { return rules_.size(); }

    bool
    guard(std::size_t r, const VState &s) const
    {
        const Entry &e = rules_[r];
        if (!e.guardFlat)
            return (*e.guardFn)(s);
        for (std::uint32_t i = e.gBegin; i != e.gEnd; ++i) {
            const GuardTerm &t = gterms_[i];
            const std::uint8_t v = s[t.var];
            bool ok = false;
            switch (t.op) {
              case GuardTerm::Op::Eq: ok = v == t.imm; break;
              case GuardTerm::Op::Ne: ok = v != t.imm; break;
              case GuardTerm::Op::Lt: ok = v < t.imm; break;
              case GuardTerm::Op::Le: ok = v <= t.imm; break;
              case GuardTerm::Op::Gt: ok = v > t.imm; break;
              case GuardTerm::Op::Ge: ok = v >= t.imm; break;
            }
            if (!ok)
                return false;
        }
        return true;
    }

    void
    effect(std::size_t r, VState &s) const
    {
        const Entry &e = rules_[r];
        if (!e.effectFlat) {
            (*e.effectFn)(s);
            return;
        }
        for (std::uint32_t i = e.eBegin; i != e.eEnd; ++i) {
            const EffectTerm &t = eterms_[i];
            s[t.dst] = t.op == EffectTerm::Op::Set ? t.imm : s[t.src];
        }
    }

  private:
    struct Entry
    {
        std::uint32_t gBegin = 0, gEnd = 0;
        std::uint32_t eBegin = 0, eEnd = 0;
        bool guardFlat = false;
        bool effectFlat = false;
        const TransitionSystem::Guard *guardFn = nullptr;
        const TransitionSystem::Effect *effectFn = nullptr;
    };

    std::vector<Entry> rules_;
    std::vector<GuardTerm> gterms_;
    std::vector<EffectTerm> eterms_;
};

} // namespace neo

#endif // NEO_VERIF_TRANSITION_SYSTEM_HPP
