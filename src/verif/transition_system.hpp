/**
 * @file
 * Guarded-command transition systems for the model checker.
 *
 * This is the Murphi/Cubicle-workalike substrate the Neo verification
 * methodology runs on: a finite vector of small-domain variables, a
 * set of named guarded rules (each tagged input / output / internal in
 * the Neo sense), and a set of invariants. Protocol models (the flat
 * Closed and Open Neo Systems of §2.5) are built against this.
 */

#ifndef NEO_VERIF_TRANSITION_SYSTEM_HPP
#define NEO_VERIF_TRANSITION_SYSTEM_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "neo/execution.hpp"
#include "sim/logging.hpp"

namespace neo
{

/** A model-checker state: one byte per declared variable. */
using VState = std::vector<std::uint8_t>;

/**
 * One conjunct of a flat (declarative) guard: `s[var] OP imm`. A
 * guard expressed as a vector of these is a pure conjunction the
 * engines can evaluate as a tight table scan — no std::function
 * indirect call, no captured-lambda heap hop. Disjunctions and
 * quantified conditions stay as std::function fallbacks.
 */
struct GuardTerm
{
    enum class Op : std::uint8_t
    {
        Eq, ///< s[var] == imm
        Ne, ///< s[var] != imm
        Lt, ///< s[var] <  imm
        Le, ///< s[var] <= imm
        Gt, ///< s[var] >  imm
        Ge, ///< s[var] >= imm
    };
    std::uint16_t var = 0;
    Op op = Op::Eq;
    std::uint8_t imm = 0;
};

/**
 * One step of a flat effect, applied in sequence: `s[dst] = imm`
 * (Set) or `s[dst] = s[src]` (CopyVar, reading the CURRENT, partially
 * updated state — exactly like the statement sequence in a lambda).
 */
struct EffectTerm
{
    enum class Op : std::uint8_t
    {
        Set,     ///< s[dst] = imm
        CopyVar, ///< s[dst] = s[src]
    };
    std::uint16_t dst = 0;
    Op op = Op::Set;
    std::uint16_t src = 0;
    std::uint8_t imm = 0;
};

/**
 * Declarative finite transition system.
 */
class TransitionSystem
{
  public:
    using Guard = std::function<bool(const VState &)>;
    using Effect = std::function<void(VState &)>;
    using Check = std::function<bool(const VState &)>;
    /** Maps a state to its canonical symmetry representative. */
    using Canonicalizer = std::function<void(VState &)>;
    /** Exact identity predicate for the canonicalizer: returns true
     *  IFF the canonicalizer would leave the state unchanged. Models
     *  whose canon sorts leaf blocks can answer this with one
     *  sortedness sweep — no allocation, no sort — which lets the
     *  engines skip the canonicalization call entirely on the ~40-50%
     *  of firings that land on an already-canonical successor (the
     *  dependency-index fast path). Optional; when absent the engines
     *  detect identity by comparing bytes after canonicalizing. */
    using CanonicalCheck = std::function<bool(const VState &)>;
    /** Permission summary of a state (the Neo sumC output). */
    using Summarizer = std::function<Perm(const VState &)>;

    struct Rule
    {
        std::string name;
        ActionKind kind = ActionKind::Internal;
        Guard guard;
        Effect effect;
        /** Flat term forms, when the model declared them (guardFlat /
         *  effectFlat distinguish "flat with zero terms" from "not
         *  expressible"). The `guard`/`effect` functions above are
         *  ALWAYS valid — synthesized from the terms when the rule
         *  was declared flat — so replay, fingerprinting and the
         *  mutant registry never care which form a rule uses. */
        std::vector<GuardTerm> guardTerms;
        std::vector<EffectTerm> effectTerms;
        bool guardFlat = false;
        bool effectFlat = false;
        /** Declared read-set for a FALLBACK (lambda) guard: the exact
         *  variables the guard inspects, promised by the model author
         *  via declareGuardReads(). Lets the dependency index keep a
         *  disjunctive guard out of the conservative everything-set.
         *  Flat guards don't need it (their reads are the term vars). */
        std::vector<std::uint16_t> guardReads;
        bool guardReadsDeclared = false;

        /** Rewrite the guard/effect with an opaque function (the
         *  mutant registry's surgical rewrites). MUST be used instead
         *  of assigning the member directly: a stale flat form — or a
         *  stale declared read-set — would make CompiledRules or the
         *  dependency index reason about the pre-mutation behavior. */
        void
        overrideGuard(Guard g)
        {
            guard = std::move(g);
            guardTerms.clear();
            guardFlat = false;
            guardReads.clear();
            guardReadsDeclared = false;
        }
        void
        overrideEffect(Effect e)
        {
            effect = std::move(e);
            effectTerms.clear();
            effectFlat = false;
        }
    };

    struct Invariant
    {
        std::string name;
        Check check;
        /** Flat term form (a pure conjunction over single variables),
         *  when the model declared one; `check` is synthesized from
         *  the terms in that case, so every consumer that only knows
         *  `check` behaves identically. */
        std::vector<GuardTerm> terms;
        bool flat = false;
        /** The exact variables the predicate reads — from the flat
         *  terms, or declared alongside a lambda check. Feeds the
         *  dependency index's var→invariant map; absent means the
         *  invariant conservatively depends on every variable. */
        std::vector<std::uint16_t> reads;
        bool readsDeclared = false;
    };

    /** Declare a variable; @return its index into the state vector. */
    std::size_t
    addVar(std::string name, std::uint8_t init = 0)
    {
        varNames_.push_back(std::move(name));
        init_.push_back(init);
        return varNames_.size() - 1;
    }

    void
    addRule(std::string name, ActionKind kind, Guard guard, Effect effect)
    {
        Rule r;
        r.name = std::move(name);
        r.kind = kind;
        r.guard = std::move(guard);
        r.effect = std::move(effect);
        rules_.push_back(std::move(r));
    }

    /** Declare a rule in flat term form. The function forms are
     *  synthesized from the terms, so every consumer that only knows
     *  `Rule::guard`/`Rule::effect` (trace replay, fingerprints,
     *  mutants) behaves identically; the engines' CompiledRules
     *  evaluates the terms directly, skipping the std::function
     *  dispatch on the hot path. */
    void addRule(std::string name, ActionKind kind,
                 std::vector<GuardTerm> guard,
                 std::vector<EffectTerm> effect);

    /** Flat rule with a fallback (non-flat) guard — for rules whose
     *  condition needs a disjunction or quantifier but whose effect
     *  is a plain assignment sequence. */
    void addRule(std::string name, ActionKind kind, Guard guard,
                 std::vector<EffectTerm> effect);

    void
    addInvariant(std::string name, Check check)
    {
        Invariant inv;
        inv.name = std::move(name);
        inv.check = std::move(check);
        invariants_.push_back(std::move(inv));
    }

    /** Invariant in flat term form (a conjunction of `s[var] OP imm`);
     *  the predicate is synthesized from the terms and the read-set is
     *  exactly the term variables. */
    void addInvariant(std::string name, std::vector<GuardTerm> terms);

    /** Lambda invariant with a declared read-set: @p reads must list
     *  EVERY variable the predicate can inspect (the engines skip
     *  re-checking it after firings that write none of them). */
    void addInvariant(std::string name, Check check,
                      std::vector<std::uint16_t> reads);

    /** Declare the exact read-set of an existing rule's fallback
     *  (lambda) guard; fatal if the rule does not exist. The promise
     *  mirrors addInvariant's: @p vars lists EVERY variable the guard
     *  can inspect. Cleared again by Rule::overrideGuard. */
    void declareGuardReads(const std::string &ruleName,
                           std::vector<std::uint16_t> vars);

    /** Remove an invariant by name; @return whether it existed. Used
     *  by corpus mutants whose protocol change makes one bookkeeping
     *  invariant vacuous, so the remaining violation is unique. */
    bool dropInvariant(const std::string &name);

    void
    setCanonicalizer(Canonicalizer c, CanonicalCheck isCanonical = {})
    {
        canon_ = std::move(c);
        canonCheck_ = std::move(isCanonical);
    }
    void setSummarizer(Summarizer s) { sum_ = std::move(s); }

    VState initialState() const { return init_; }
    std::size_t numVars() const { return init_.size(); }
    const std::vector<Rule> &rules() const { return rules_; }
    const std::vector<Invariant> &invariants() const
    {
        return invariants_;
    }
    const Canonicalizer &canonicalizer() const { return canon_; }
    const CanonicalCheck &canonicalCheck() const { return canonCheck_; }
    const Summarizer &summarizer() const { return sum_; }
    const std::string &varName(std::size_t i) const
    {
        return varNames_.at(i);
    }

    /** Index of a declared variable; fatal if absent. The mutation
     *  corpus addresses variables by name so mutants survive layout
     *  changes in the model builders. */
    std::size_t varIndex(const std::string &name) const;

    /** Mutable rule lookup by exact name; nullptr if absent. Exists
     *  for the mutant registry, which surgically rewrites guards and
     *  effects of otherwise-correct models. */
    Rule *findRule(const std::string &name);

    /** Render a state for counterexample traces. */
    std::string describe(const VState &s) const;

  private:
    std::vector<std::string> varNames_;
    VState init_;
    std::vector<Rule> rules_;
    std::vector<Invariant> invariants_;
    Canonicalizer canon_;
    CanonicalCheck canonCheck_;
    Summarizer sum_;
};

/** One recorded byte of a fire-and-undo effect application: restore
 *  s[var] = old to roll the firing back (CompiledRules::undoEffect
 *  replays records in reverse, so effects that write a variable twice
 *  restore the ORIGINAL value). */
struct EffectUndo
{
    std::uint16_t var = 0;
    std::uint8_t old = 0;
};

/**
 * Flat guard/effect tables compiled from a TransitionSystem's rules.
 *
 * Rules declared in term form evaluate as scans over two contiguous
 * term arrays (one branch-predictable loop, no virtual or indirect
 * dispatch); rules that only have function forms fall back to calling
 * them through a raw pointer. Every engine hot loop (sequential BFS,
 * the parallel workers, the random-walk falsifier) fires rules
 * through this table, so the two forms are behaviorally
 * indistinguishable by construction — addRule's synthesized functions
 * and the term evaluation here implement the same semantics, and the
 * golden-count suite pins it.
 *
 * Lifetime: holds pointers into @p ts; the system must outlive the
 * table. Immutable after construction, so one instance is safe to
 * share across worker threads. Rules must not be mutated (e.g. by the
 * mutant registry) after compilation — compile after mutation.
 */
class CompiledRules
{
  public:
    explicit CompiledRules(const TransitionSystem &ts);

    std::size_t size() const { return rules_.size(); }

    bool
    guard(std::size_t r, const VState &s) const
    {
        const Entry &e = rules_[r];
        if (!e.guardFlat)
            return (*e.guardFn)(s);
        for (std::uint32_t i = e.gBegin; i != e.gEnd; ++i) {
            const GuardTerm &t = gterms_[i];
            const std::uint8_t v = s[t.var];
            bool ok = false;
            switch (t.op) {
              case GuardTerm::Op::Eq: ok = v == t.imm; break;
              case GuardTerm::Op::Ne: ok = v != t.imm; break;
              case GuardTerm::Op::Lt: ok = v < t.imm; break;
              case GuardTerm::Op::Le: ok = v <= t.imm; break;
              case GuardTerm::Op::Gt: ok = v > t.imm; break;
              case GuardTerm::Op::Ge: ok = v >= t.imm; break;
            }
            if (!ok)
                return false;
        }
        return true;
    }

    void
    effect(std::size_t r, VState &s) const
    {
        const Entry &e = rules_[r];
        if (!e.effectFlat) {
            (*e.effectFn)(s);
            return;
        }
        for (std::uint32_t i = e.eBegin; i != e.eEnd; ++i) {
            const EffectTerm &t = eterms_[i];
            s[t.dst] = t.op == EffectTerm::Op::Set ? t.imm : s[t.src];
        }
    }

    bool guardFlat(std::size_t r) const { return rules_[r].guardFlat; }
    bool effectFlat(std::size_t r) const
    {
        return rules_[r].effectFlat;
    }

    /** Largest flat-effect term count over all rules: the undo buffer
     *  size effectInPlace() needs (0 for a rule-free system). */
    std::size_t maxEffectTerms() const { return maxEffectTerms_; }

    /** Fire rule @p r's FLAT effect directly on @p s, writing one undo
     *  record per term into @p undo — a raw buffer of at least
     *  maxEffectTerms() entries; raw writes, not a vector, because
     *  this runs once per transition and even push_back's capacity
     *  check is measurable there. Returns the record count. Only valid
     *  when effectFlat(r); the caller restores @p s with
     *  undoEffect(). */
    std::size_t
    effectInPlace(std::size_t r, VState &s, EffectUndo *undo) const
    {
        const Entry &e = rules_[r];
        std::size_t n = 0;
        for (std::uint32_t i = e.eBegin; i != e.eEnd; ++i) {
            const EffectTerm &t = eterms_[i];
            undo[n++] = EffectUndo{t.dst, s[t.dst]};
            s[t.dst] = t.op == EffectTerm::Op::Set ? t.imm : s[t.src];
        }
        return n;
    }

    /** Roll back an effectInPlace() application (reverse replay) and
     *  clear the log for reuse. */
    static void
    undoEffect(VState &s, const EffectUndo *undo, std::size_t n)
    {
        while (n-- > 0)
            s[undo[n].var] = undo[n].old;
    }

  private:
    struct Entry
    {
        std::uint32_t gBegin = 0, gEnd = 0;
        std::uint32_t eBegin = 0, eEnd = 0;
        bool guardFlat = false;
        bool effectFlat = false;
        const TransitionSystem::Guard *guardFn = nullptr;
        const TransitionSystem::Effect *effectFn = nullptr;
    };

    std::vector<Entry> rules_;
    std::vector<GuardTerm> gterms_;
    std::vector<EffectTerm> eterms_;
    std::size_t maxEffectTerms_ = 0;
};

/**
 * Static read/write dependency index over a TransitionSystem.
 *
 * For every rule r it precomputes two bitsets:
 *
 *  - affectedRules(r): the rules whose guard READ-set intersects r's
 *    effect WRITE-set. After firing r on a state whose enabled-rule
 *    bitset is known, only these guards can have changed value — the
 *    engines re-evaluate them and copy every other bit from the
 *    parent (sound ONLY when the successor is its own canonical
 *    representative; a permuted representative rewrites variables the
 *    effect never touched, so the engines gate the delta on a
 *    canonicalizer-identity check and fall back to a full scan).
 *
 *  - affectedInvariants(r): the invariants whose read-set intersects
 *    r's write-set. An invariant outside this set evaluates to the
 *    same value on parent and successor, and the parent (being
 *    expanded) already passed it — so it provably holds and the
 *    engines can skip the predicate call while still counting the
 *    logical evaluation.
 *
 * Conservatism: a fallback (lambda) guard without a declared
 * read-set reads "everything" (its bit is re-evaluated after every
 * firing); a fallback effect writes "everything" (the firing
 * invalidates every guard and every invariant). Mutant-overridden
 * rules clear their flat forms and declared read-sets, so they are
 * conservative by construction. Immutable after construction and
 * safe to share read-only across worker threads; holds no pointers
 * into the system.
 */
class RuleDepIndex
{
  public:
    explicit RuleDepIndex(const TransitionSystem &ts);

    std::size_t numRules() const { return nRules_; }
    std::size_t numInvariants() const { return nInvs_; }
    /** Words per rule-bitset / invariant-bitset. */
    std::size_t ruleWords() const { return ruleWords_; }
    std::size_t invWords() const { return invWords_; }

    const std::uint64_t *
    affectedRules(std::size_t r) const
    {
        return affRules_.data() + r * ruleWords_;
    }
    const std::uint64_t *
    affectedInvariants(std::size_t r) const
    {
        return affInvs_.data() + r * invWords_;
    }
    /** Popcount of affectedRules(r) — what a delta re-evaluation
     *  costs; numRules() - this is what it skips. */
    std::uint32_t
    affectedRuleCount(std::size_t r) const
    {
        return affRuleCount_[r];
    }

    bool
    ruleAffectsRule(std::size_t r, std::size_t q) const
    {
        return (affectedRules(r)[q >> 6] >> (q & 63)) & 1;
    }
    bool
    ruleAffectsInvariant(std::size_t r, std::size_t i) const
    {
        return (affectedInvariants(r)[i >> 6] >> (i & 63)) & 1;
    }

    /** Rule r's effect write-set is unknown (fallback effect): it
     *  conservatively invalidates every guard and invariant. */
    bool
    writeSetUnknown(std::size_t r) const
    {
        return writeUnknown_[r] != 0;
    }
    /** Rule q's guard read-set is unknown (fallback guard, no
     *  declared reads): every firing re-evaluates it. */
    bool
    readSetUnknown(std::size_t q) const
    {
        return readUnknown_[q] != 0;
    }

    /** Mean affected-rule count across rules (reported by the bench:
     *  the expected delta cost per firing vs a full O(R) scan). */
    double avgAffectedRules() const;

  private:
    std::size_t nRules_ = 0, nInvs_ = 0;
    std::size_t ruleWords_ = 0, invWords_ = 0;
    std::vector<std::uint64_t> affRules_;
    std::vector<std::uint64_t> affInvs_;
    std::vector<std::uint32_t> affRuleCount_;
    std::vector<std::uint8_t> writeUnknown_;
    std::vector<std::uint8_t> readUnknown_;
};

} // namespace neo

#endif // NEO_VERIF_TRANSITION_SYSTEM_HPP
