#include "workload.hpp"

#include "sim/logging.hpp"

namespace neo
{

WorkloadGen::WorkloadGen(const WorkloadParams &params, unsigned num_cores,
                         std::uint64_t block_size, std::uint64_t seed)
    : params_(params), numCores_(num_cores), blockSize_(block_size)
{
    neo_assert(num_cores > 0, "workload needs cores");
    rngs_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        rngs_.emplace_back(seed * 2654435761ULL + c + 1);
    if (params_.pattern == SharingPattern::Migratory) {
        migOwner_.assign(params_.sharedBlocks, 0);
        migLeft_.assign(params_.sharedBlocks, 0);
    }
}

Addr
WorkloadGen::privateBlockAddr(CoreId core, std::uint64_t block) const
{
    // Private regions are laid out back to back from address 0.
    const std::uint64_t idx =
        static_cast<std::uint64_t>(core) * params_.privateBlocksPerCore +
        block;
    return idx * blockSize_;
}

Addr
WorkloadGen::sharedBlockAddr(std::uint64_t block) const
{
    const std::uint64_t base =
        static_cast<std::uint64_t>(numCores_) *
        params_.privateBlocksPerCore;
    return (base + block) * blockSize_;
}

std::uint64_t
WorkloadGen::pickSharedBlock(CoreId core, Random &rng)
{
    const std::uint64_t n = params_.sharedBlocks;
    switch (params_.pattern) {
      case SharingPattern::Uniform:
        return rng.below(n);
      case SharingPattern::Neighbor: {
        // A pipeline stage shares a window of blocks with the next
        // stage: core i draws from the slice [i, i+2) of the region.
        const std::uint64_t slice = n / numCores_ > 0 ? n / numCores_ : 1;
        const std::uint64_t stage =
            (core + (rng.chance(0.5) ? 0u : 1u)) % numCores_;
        return (stage * slice + rng.below(slice)) % n;
      }
      case SharingPattern::Migratory: {
        const std::uint64_t b = rng.below(n);
        if (migLeft_[b] == 0 || migOwner_[b] == core) {
            // Claim (or continue) an exclusive burst on this block.
            if (migLeft_[b] == 0) {
                migOwner_[b] = core;
                migLeft_[b] = 1 + static_cast<std::uint32_t>(
                                      rng.below(params_.migratoryBurst));
            }
            --migLeft_[b];
            return b;
        }
        // Someone else is bursting on b; fall back to a private-ish
        // corner of the shared region.
        return (b + core) % n;
      }
    }
    return 0;
}

MemOp
WorkloadGen::next(CoreId core)
{
    neo_assert(core < numCores_, "core id out of range");
    Random &rng = rngs_[core];
    MemOp op;
    op.think = rng.geometric(params_.meanThink);
    if (params_.sharedBlocks > 0 && rng.chance(params_.sharedFraction)) {
        op.addr = sharedBlockAddr(pickSharedBlock(core, rng));
        op.write = rng.chance(params_.sharedWriteFraction);
    } else {
        op.addr = privateBlockAddr(
            core, rng.below(params_.privateBlocksPerCore));
        op.write = rng.chance(params_.privateWriteFraction);
    }
    return op;
}

std::vector<WorkloadParams>
parsecSuite()
{
    // Parameters follow the PARSEC characterization (PACT 2008):
    // working-set sizes and sharing intensities are scaled to the
    // simulated cache sizes while preserving the relative ordering
    // (canneal/facesim large and irregular; swaptions/blackscholes
    // tiny and private; dedup/x264 pipelined).
    std::vector<WorkloadParams> suite;

    WorkloadParams p;
    p.name = "blackscholes";
    p.privateBlocksPerCore = 384;
    p.sharedBlocks = 128;
    p.sharedFraction = 0.02;
    p.privateWriteFraction = 0.25;
    p.sharedWriteFraction = 0.05;
    p.meanThink = 10.0;
    p.pattern = SharingPattern::Uniform;
    suite.push_back(p);

    p = WorkloadParams{};
    p.name = "bodytrack";
    p.privateBlocksPerCore = 512;
    p.sharedBlocks = 512;
    p.sharedFraction = 0.10;
    p.privateWriteFraction = 0.30;
    p.sharedWriteFraction = 0.15;
    p.meanThink = 7.0;
    p.pattern = SharingPattern::Uniform;
    suite.push_back(p);

    p = WorkloadParams{};
    p.name = "canneal";
    p.privateBlocksPerCore = 2048;
    p.sharedBlocks = 4096;
    p.sharedFraction = 0.30;
    p.privateWriteFraction = 0.35;
    p.sharedWriteFraction = 0.40;
    p.meanThink = 4.0;
    p.pattern = SharingPattern::Uniform;
    suite.push_back(p);

    p = WorkloadParams{};
    p.name = "dedup";
    p.privateBlocksPerCore = 768;
    p.sharedBlocks = 1024;
    p.sharedFraction = 0.15;
    p.privateWriteFraction = 0.35;
    p.sharedWriteFraction = 0.35;
    p.meanThink = 6.0;
    p.pattern = SharingPattern::Neighbor;
    suite.push_back(p);

    p = WorkloadParams{};
    p.name = "facesim";
    p.privateBlocksPerCore = 3072;
    p.sharedBlocks = 1024;
    p.sharedFraction = 0.05;
    p.privateWriteFraction = 0.40;
    p.sharedWriteFraction = 0.20;
    p.meanThink = 5.0;
    p.pattern = SharingPattern::Uniform;
    suite.push_back(p);

    p = WorkloadParams{};
    p.name = "swaptions";
    p.privateBlocksPerCore = 256;
    p.sharedBlocks = 64;
    p.sharedFraction = 0.01;
    p.privateWriteFraction = 0.30;
    p.sharedWriteFraction = 0.05;
    p.meanThink = 9.0;
    p.pattern = SharingPattern::Uniform;
    suite.push_back(p);

    p = WorkloadParams{};
    p.name = "x264";
    p.privateBlocksPerCore = 1024;
    p.sharedBlocks = 1536;
    p.sharedFraction = 0.12;
    p.privateWriteFraction = 0.30;
    p.sharedWriteFraction = 0.25;
    p.meanThink = 6.0;
    p.pattern = SharingPattern::Neighbor;
    suite.push_back(p);

    return suite;
}

WorkloadParams
parsecProfile(const std::string &name)
{
    for (const auto &p : parsecSuite())
        if (p.name == name)
            return p;
    neo_fatal("unknown PARSEC profile: ", name);
}

} // namespace neo
