/**
 * @file
 * Synthetic multithreaded workload generators.
 *
 * The paper evaluates with seven PARSEC benchmarks under gem5
 * full-system simulation. We have neither gem5 nor PARSEC binaries, so
 * each benchmark is replaced by a synthetic address-stream generator
 * whose parameters follow the published PARSEC characterization
 * (Bienia et al., PACT 2008): per-thread working-set size, fraction of
 * accesses to shared data, write ratios, and the dominant sharing
 * pattern (data-parallel, pipeline/neighbor, or irregular/uniform).
 * The paper's evaluation claims are relative across protocols under
 * identical streams, which this preserves (see DESIGN.md).
 */

#ifndef NEO_WORKLOAD_WORKLOAD_HPP
#define NEO_WORKLOAD_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace neo
{

/** One memory operation issued by a core. */
struct MemOp
{
    Addr addr = 0;
    bool write = false;
    /** Compute cycles before this op is issued. */
    Tick think = 0;
};

/** How shared blocks are distributed among threads. */
enum class SharingPattern
{
    /** Any thread touches any shared block (irregular, canneal-like). */
    Uniform,
    /** Thread i shares mostly with threads i-1 / i+1 (pipeline,
     *  dedup/x264-like). */
    Neighbor,
    /** Shared blocks are accessed in exclusive bursts by one thread at
     *  a time (migratory, lock-protected data). */
    Migratory,
};

struct WorkloadParams
{
    std::string name = "synthetic";
    /** Private working set, in blocks, per core. */
    std::uint64_t privateBlocksPerCore = 512;
    /** Globally shared region size, in blocks. */
    std::uint64_t sharedBlocks = 256;
    /** Probability an access goes to the shared region. */
    double sharedFraction = 0.05;
    /** Write probability for private accesses. */
    double privateWriteFraction = 0.3;
    /** Write probability for shared accesses. */
    double sharedWriteFraction = 0.2;
    /** Mean compute gap between memory ops, cycles. */
    double meanThink = 6.0;
    SharingPattern pattern = SharingPattern::Uniform;
    /** For Migratory: mean burst length before the block migrates. */
    std::uint32_t migratoryBurst = 8;
};

/**
 * Deterministic per-core operation stream over a block-granular
 * address space: each core owns a private region and all cores share
 * one region laid out after the private ones.
 */
class WorkloadGen
{
  public:
    WorkloadGen(const WorkloadParams &params, unsigned num_cores,
                std::uint64_t block_size, std::uint64_t seed);

    MemOp next(CoreId core);

    const WorkloadParams &params() const { return params_; }
    const std::string &name() const { return params_.name; }

  private:
    Addr privateBlockAddr(CoreId core, std::uint64_t block) const;
    Addr sharedBlockAddr(std::uint64_t block) const;

    /** Pick a shared block index for @p core under the pattern. */
    std::uint64_t pickSharedBlock(CoreId core, Random &rng);

    WorkloadParams params_;
    unsigned numCores_;
    std::uint64_t blockSize_;
    std::vector<Random> rngs_; ///< one stream per core
    /** Migratory pattern state: current exclusive holder per block
     *  group and remaining burst. */
    std::vector<std::uint32_t> migOwner_;
    std::vector<std::uint32_t> migLeft_;
};

/** The seven PARSEC-like presets of the paper's evaluation (§5.2). */
std::vector<WorkloadParams> parsecSuite();

/** Look up one preset by name (fatal on unknown name). */
WorkloadParams parsecProfile(const std::string &name);

} // namespace neo

#endif // NEO_WORKLOAD_WORKLOAD_HPP
