/**
 * @file
 * Crash-safety contract tests for the checkpoint/resume subsystem.
 *
 * The load-bearing property is DIFFERENTIAL: for every exploration
 * mode (sequential BFS, sharded parallel at 2/4/8 threads, random
 * walks, parametric sweep) a run that is killed mid-flight and then
 * resumed — possibly several times — must reach the exact fixpoint of
 * an uninterrupted reference run: same status, state/transition
 * counts, per-rule fire counts, violated invariant. Cross-mode resume
 * (a sequential snapshot picked up by the parallel explorer and vice
 * versa) is part of the contract, because the snapshot layout is
 * canonical.
 *
 * The other half is REJECTION: a truncated, bit-flipped, wrong-mode
 * or wrong-model snapshot must be refused with a precise error (and a
 * clean usage-error exit when it happens under --resume), never
 * silently decoded into a wrong answer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "verif/checkpoint.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/models/mutants.hpp"
#include "verif/parametric.hpp"
#include "verif/random_walk.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

constexpr unsigned kThreadCounts[] = {2, 4, 8};

/** Self-deleting checkpoint directory. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/neo_ckpt_XXXXXX";
        const char *d = mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path_ = d != nullptr ? d : "";
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Guard against interrupt-flag leakage between tests. */
class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearInterruptRequest(); }
    void TearDown() override { clearInterruptRequest(); }
};

/**
 * Run an exploration that interrupts itself after the on_state
 * callback has fired `interruptAfter[round]` times in that round
 * (restored states replay through the callback, so later thresholds
 * must exceed earlier ones to make progress), then keeps resuming
 * until the run completes. Returns the final result.
 */
ExploreResult
runInterruptedChain(const TransitionSystem &ts, ExploreLimits lim,
                    const std::string &dir,
                    const std::vector<std::uint64_t> &interruptAfter,
                    std::uint64_t *roundsOut = nullptr)
{
    CheckpointConfig cfg;
    cfg.dir = dir;
    ExploreResult r;
    std::uint64_t round = 0;
    for (;; ++round) {
        // Bound the loop: thresholds strictly increase, and the final
        // round (past the vector) never interrupts.
        if (round > interruptAfter.size() + 2) {
            ADD_FAILURE() << "interrupt chain made no progress";
            break;
        }
        clearInterruptRequest();
        cfg.resume = round > 0;
        lim.checkpoint = &cfg;
        const std::uint64_t thresh =
            round < interruptAfter.size()
                ? interruptAfter[round]
                : std::numeric_limits<std::uint64_t>::max();
        std::atomic<std::uint64_t> seen{0};
        r = explore(ts, lim, false, true, [&](const VState &) {
            if (seen.fetch_add(1, std::memory_order_relaxed) + 1 >=
                thresh)
                requestInterrupt();
        });
        if (r.status != VerifStatus::Interrupted)
            break;
        EXPECT_TRUE(snapshotExists(exploreSnapshotPath(cfg)))
            << "interrupted run left no snapshot";
    }
    clearInterruptRequest();
    if (roundsOut != nullptr)
        *roundsOut = round;
    return r;
}

void
expectSameFixpoint(const ExploreResult &got, const ExploreResult &ref)
{
    EXPECT_EQ(got.status, ref.status)
        << verifStatusName(got.status) << " vs "
        << verifStatusName(ref.status);
    EXPECT_EQ(got.statesExplored, ref.statesExplored);
    EXPECT_EQ(got.transitionsFired, ref.transitionsFired);
    EXPECT_EQ(got.ruleFires, ref.ruleFires);
    EXPECT_EQ(got.violatedInvariant, ref.violatedInvariant);
}

} // namespace

// ----------------------------------------------------------------
// Tentpole contract: kill-then-resume reaches the identical fixpoint
// on every bundled model, sequentially and at every thread count.
// ----------------------------------------------------------------

TEST_F(CheckpointTest, SequentialKillResumeAllModels)
{
    struct Named
    {
        std::string name;
        TransitionSystem ts;
    };
    std::vector<Named> models;
    {
        ModelShape shape;
        models.push_back({"german/N=3", buildGermanModel(3, shape)});
    }
    {
        ModelShape shape;
        models.push_back(
            {"closed/neomesi/N=3",
             buildClosedModel(3, VerifFeatures::neoMESI(), shape)});
    }
    {
        ModelShape shape;
        models.push_back(
            {"closed/moesi/N=3",
             buildClosedModel(3, VerifFeatures::withOwned(), shape)});
    }
    {
        ModelShape shape;
        models.push_back(
            {"open/neomesi/N=3",
             buildOpenModel(3, VerifFeatures::neoMESI(),
                            CompositionMethod::Modified, shape)});
    }

    const ExploreLimits lim{2'000'000, 120.0};
    for (const Named &m : models) {
        SCOPED_TRACE(m.name);
        const ExploreResult ref = explore(m.ts, lim, false, true);
        ASSERT_EQ(ref.status, VerifStatus::Verified);

        TempDir dir;
        const std::uint64_t s = ref.statesExplored;
        const ExploreResult got = runInterruptedChain(
            m.ts, lim, dir.path(), {s / 3, (2 * s) / 3});
        expectSameFixpoint(got, ref);
        EXPECT_TRUE(got.resumed);
        // A completed run cleans up after itself.
        CheckpointConfig cfg;
        cfg.dir = dir.path();
        EXPECT_FALSE(snapshotExists(exploreSnapshotPath(cfg)));
    }
}

TEST_F(CheckpointTest, ParallelKillResumeEveryThreadCount)
{
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(3, VerifFeatures::neoMESI(), shape);
    const ExploreLimits lim{2'000'000, 120.0};
    const ExploreResult ref = explore(ts, lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);

    for (unsigned t : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(t));
        TempDir dir;
        ExploreLimits plim = lim;
        plim.threads = t;
        const std::uint64_t s = ref.statesExplored;
        const ExploreResult got = runInterruptedChain(
            ts, plim, dir.path(), {s / 3, (2 * s) / 3});
        expectSameFixpoint(got, ref);
    }
}

TEST_F(CheckpointTest, CrossModeResume)
{
    // The canonical snapshot layout makes mode a runtime choice: a
    // sequential snapshot resumes on the parallel explorer and vice
    // versa, and even the thread count may change between resumes.
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(4, shape);
    const ExploreLimits lim{2'000'000, 120.0};
    const ExploreResult ref = explore(ts, lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);
    const std::uint64_t s = ref.statesExplored;

    struct Leg
    {
        unsigned threads;
        std::uint64_t interruptAfter; // 0 = run to completion
    };
    const std::vector<std::vector<Leg>> schedules = {
        {{1, s / 3}, {4, 0}},          // seq snapshot -> parallel
        {{4, s / 3}, {1, 0}},          // parallel snapshot -> seq
        {{2, s / 4}, {8, s / 2}, {1, 0}}, // mixed chain
    };
    for (std::size_t k = 0; k < schedules.size(); ++k) {
        SCOPED_TRACE("schedule " + std::to_string(k));
        TempDir dir;
        CheckpointConfig cfg;
        cfg.dir = dir.path();
        ExploreResult r;
        for (std::size_t leg = 0; leg < schedules[k].size(); ++leg) {
            clearInterruptRequest();
            const Leg &L = schedules[k][leg];
            cfg.resume = leg > 0;
            ExploreLimits l = lim;
            l.threads = L.threads;
            l.checkpoint = &cfg;
            std::atomic<std::uint64_t> seen{0};
            const std::uint64_t thresh =
                L.interruptAfter == 0
                    ? std::numeric_limits<std::uint64_t>::max()
                    : L.interruptAfter;
            r = explore(ts, l, false, true, [&](const VState &) {
                if (seen.fetch_add(1, std::memory_order_relaxed) +
                        1 >=
                    thresh)
                    requestInterrupt();
            });
            if (L.interruptAfter == 0)
                break;
            ASSERT_EQ(r.status, VerifStatus::Interrupted);
        }
        clearInterruptRequest();
        expectSameFixpoint(r, ref);
    }
}

TEST_F(CheckpointTest, SequentialResumeReproducesViolationAndTrace)
{
    // Sequential BFS preserves the frontier order across a snapshot,
    // so even the counterexample trace is bit-identical on resume.
    VerifFeatures f = VerifFeatures::neoMESI();
    f.nonSiblingFwd = true;
    ModelShape shape;
    const TransitionSystem ts =
        buildOpenModel(2, f, CompositionMethod::Modified, shape);
    const ExploreLimits lim{2'000'000, 120.0};
    const ExploreResult ref = explore(ts, lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::InvariantViolated);

    TempDir dir;
    const ExploreResult got = runInterruptedChain(
        ts, lim, dir.path(), {ref.statesExplored / 2});
    EXPECT_EQ(got.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(got.violatedInvariant, ref.violatedInvariant);
    EXPECT_EQ(got.trace, ref.trace);
    EXPECT_EQ(got.badState, ref.badState);
    // Violations are definitive: the snapshot must be gone.
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    EXPECT_FALSE(snapshotExists(exploreSnapshotPath(cfg)));
}

TEST_F(CheckpointTest, PeriodicSnapshotsAreWrittenAndCleanedUp)
{
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(4, shape);
    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    // German N=4 explores for tens of ms plain (seconds under a
    // sanitizer); a 10 ms cadence gives several periodic snapshots
    // either way, and the snapshots are small enough (~1 MB) that
    // the serialization + fsync work stays far inside the bound.
    cfg.everySeconds = 0.01;
    ExploreLimits lim{2'000'000, 600.0};
    lim.checkpoint = &cfg;
    const ExploreResult r = explore(ts, lim, false, true);
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_GE(r.checkpointsWritten, 2u);
    EXPECT_GT(r.lastSnapshotBytes, 0u);
    EXPECT_FALSE(snapshotExists(exploreSnapshotPath(cfg)));
}

// ----------------------------------------------------------------
// Snapshot rejection: corruption, truncation, wrong mode/model.
// ----------------------------------------------------------------

namespace
{

/** Interrupt a run immediately to produce a small valid snapshot. */
std::string
makeExploreSnapshot(const TransitionSystem &ts, const std::string &dir)
{
    CheckpointConfig cfg;
    cfg.dir = dir;
    ExploreLimits lim{2'000'000, 120.0};
    lim.checkpoint = &cfg;
    std::atomic<std::uint64_t> seen{0};
    const ExploreResult r =
        explore(ts, lim, false, true, [&](const VState &) {
            if (seen.fetch_add(1, std::memory_order_relaxed) >= 20)
                requestInterrupt();
        });
    clearInterruptRequest();
    EXPECT_EQ(r.status, VerifStatus::Interrupted);
    return exploreSnapshotPath(cfg);
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST_F(CheckpointTest, CorruptAndTruncatedSnapshotsAreRejected)
{
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(3, shape);
    const std::uint64_t fp = modelFingerprint(ts);
    TempDir dir;
    const std::string path = makeExploreSnapshot(ts, dir.path());
    const std::vector<char> good = slurp(path);
    ASSERT_GT(good.size(), 64u);

    std::vector<std::uint8_t> payload;
    std::string err;
    ASSERT_TRUE(readSnapshotFile(path, SnapshotKind::Explore, fp,
                                 payload, err))
        << err;

    // Bit flip inside the payload -> payload CRC mismatch.
    {
        std::vector<char> bad = good;
        bad[bad.size() - 5] ^= 0x40;
        spit(path, bad);
        EXPECT_FALSE(readSnapshotFile(path, SnapshotKind::Explore, fp,
                                      payload, err));
        EXPECT_NE(err.find("CRC mismatch"), std::string::npos) << err;
    }
    // Truncated payload.
    {
        std::vector<char> bad = good;
        bad.resize(good.size() - 16);
        spit(path, bad);
        EXPECT_FALSE(readSnapshotFile(path, SnapshotKind::Explore, fp,
                                      payload, err));
        EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    }
    // Truncated mid-header.
    {
        std::vector<char> bad = good;
        bad.resize(10);
        spit(path, bad);
        EXPECT_FALSE(readSnapshotFile(path, SnapshotKind::Explore, fp,
                                      payload, err));
    }
    // Wrong magic.
    {
        std::vector<char> bad = good;
        bad[0] = 'X';
        spit(path, bad);
        EXPECT_FALSE(readSnapshotFile(path, SnapshotKind::Explore, fp,
                                      payload, err));
        EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
    }
    // Restore the good bytes: wrong mode and wrong model are rejected
    // even with intact CRCs.
    spit(path, good);
    EXPECT_FALSE(
        readSnapshotFile(path, SnapshotKind::Walk, fp, payload, err));
    EXPECT_NE(err.find("different exploration mode"),
              std::string::npos)
        << err;
    EXPECT_FALSE(readSnapshotFile(path, SnapshotKind::Explore,
                                  fp ^ 0xdeadbeef, payload, err));
    EXPECT_NE(err.find("different model"), std::string::npos) << err;
}

TEST_F(CheckpointTest, ResumeOfCorruptSnapshotDiesWithUsageError)
{
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(3, shape);
    TempDir dir;
    const std::string path = makeExploreSnapshot(ts, dir.path());
    std::vector<char> bad = slurp(path);
    bad[bad.size() - 5] ^= 0x40;
    spit(path, bad);

    CheckpointConfig cfg;
    cfg.dir = dir.path();
    cfg.resume = true;
    ExploreLimits lim{2'000'000, 120.0};
    lim.checkpoint = &cfg;
    EXPECT_EXIT(explore(ts, lim, false, true),
                ::testing::ExitedWithCode(2),
                "cannot resume.*CRC mismatch");
}

TEST_F(CheckpointTest, ResumeAgainstDifferentModelIsRejected)
{
    ModelShape shape;
    const TransitionSystem german = buildGermanModel(3, shape);
    TempDir dir;
    makeExploreSnapshot(german, dir.path());

    ModelShape shape2;
    const TransitionSystem other =
        buildClosedModel(3, VerifFeatures::neoMESI(), shape2);
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    cfg.resume = true;
    ExploreLimits lim{2'000'000, 120.0};
    lim.checkpoint = &cfg;
    EXPECT_EXIT(explore(other, lim, false, true),
                ::testing::ExitedWithCode(2),
                "cannot resume.*different model");
}

TEST_F(CheckpointTest, WriteFailureIsReportedNotFatal)
{
    // Writing into a directory that cannot be created fails cleanly
    // with an error message (the explorers warn and keep exploring).
    SnapshotWriter w;
    w.putU64(42);
    std::string err;
    EXPECT_FALSE(writeSnapshotFile("/dev/null/nope/snap.ckpt",
                                   SnapshotKind::Explore, 1,
                                   w.buffer(), err));
    EXPECT_FALSE(err.empty());
}

// ----------------------------------------------------------------
// Memory-pressure degradation (graceful, not fatal).
// ----------------------------------------------------------------

namespace
{

/** Linear chain: len+1 states, frontier width 1, numVars 1 — the
 *  memory estimate is a closed-form function of the state count, so
 *  byte-precise bounds are deterministic. */
TransitionSystem
chainSystem(std::uint8_t len)
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    ts.addRule(
        "inc", ActionKind::Internal,
        [x, len](const VState &s) { return s[x] < len; },
        [x](VState &s) { ++s[x]; });
    ts.addInvariant("True", [](const VState &) { return true; });
    return ts;
}

} // namespace

TEST_F(CheckpointTest, MemoryPressureShedsTraceAndCompletes)
{
    const TransitionSystem ts = chainSystem(200);
    // Small maxStates keeps the pre-sized tables small, so the
    // budgets below are dominated by per-state growth, not the
    // standing table allocation.
    const ExploreLimits ref_lim{1'024, 60.0};

    // The budget is derived from two reference fixpoints rather than
    // a magic byte count: halfway between the traced and untraced
    // footprints, so the traced estimate must overflow the bound
    // mid-run while the degraded (no predecessor links) estimate of
    // the full fixpoint fits. The run must shed links, keep going,
    // and verify with exact counts.
    TempDir refDir;
    CheckpointConfig refCfg;
    refCfg.dir = refDir.path();
    ExploreLimits refCk = ref_lim;
    refCk.checkpoint = &refCfg;
    const ExploreResult ref = explore(ts, refCk, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);
    ASSERT_EQ(ref.statesExplored, 201u);
    const ExploreResult refBare = explore(ts, refCk, false, false);
    ASSERT_EQ(refBare.status, VerifStatus::Verified);
    ASSERT_LT(refBare.memoryBytes, ref.memoryBytes);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    ExploreLimits lim = ref_lim;
    lim.checkpoint = &cfg;
    lim.maxMemoryBytes =
        (ref.memoryBytes + refBare.memoryBytes) / 2;
    const ExploreResult r = explore(ts, lim, false, true);
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_TRUE(r.degradedTrace);
    EXPECT_GE(r.checkpointsWritten, 1u); // pre-degrade snapshot
    expectSameFixpoint(r, ref);
}

TEST_F(CheckpointTest, MemoryExhaustionKeepsSnapshotForResume)
{
    const TransitionSystem ts = chainSystem(200);
    const ExploreLimits ref_lim{1'024, 60.0};
    const ExploreResult ref = explore(ts, ref_lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);

    // Bound below even the degraded footprint (half the untraced
    // fixpoint's estimate): the run checkpoints, degrades,
    // checkpoints again and reports LimitExceeded — and the snapshot
    // survives so a retry with a bigger budget resumes instead of
    // starting over.
    const ExploreResult refBare = explore(ts, ref_lim, false, false);
    ASSERT_EQ(refBare.status, VerifStatus::Verified);
    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    ExploreLimits lim = ref_lim;
    lim.checkpoint = &cfg;
    lim.maxMemoryBytes = refBare.memoryBytes / 2;
    ASSERT_GT(lim.maxMemoryBytes, 0u);
    const ExploreResult r = explore(ts, lim, false, true);
    EXPECT_EQ(r.status, VerifStatus::LimitExceeded);
    EXPECT_TRUE(r.degradedTrace);
    EXPECT_TRUE(snapshotExists(exploreSnapshotPath(cfg)));

    cfg.resume = true;
    lim.maxMemoryBytes = 0;
    const ExploreResult r2 = explore(ts, lim, false, true);
    EXPECT_TRUE(r2.resumed);
    EXPECT_TRUE(r2.degradedTrace); // links were lost for good
    expectSameFixpoint(r2, ref);
}

TEST_F(CheckpointTest, MemoryBoundHonoredWithinFivePercent)
{
    // With tracing off (so no degrade step blurs the boundary), the
    // estimate at the fixpoint defines the budget exactly: 5% above
    // it verifies, 5% below trips the bound — in both modes. The
    // small maxStates keeps the pre-sized tables a minority of the
    // footprint, so the ±5% band genuinely exercises the per-state
    // accounting.
    const TransitionSystem ts = chainSystem(200);
    for (unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        TempDir dir;
        CheckpointConfig cfg;
        cfg.dir = dir.path();
        ExploreLimits lim{1'024, 60.0};
        lim.threads = threads;
        lim.checkpoint = &cfg;
        const ExploreResult free = explore(ts, lim, false, false);
        ASSERT_EQ(free.status, VerifStatus::Verified);
        ASSERT_GT(free.memoryBytes, 0u);

        ExploreLimits over = lim;
        over.maxMemoryBytes = free.memoryBytes * 105 / 100;
        EXPECT_EQ(explore(ts, over, false, false).status,
                  VerifStatus::Verified);

        ExploreLimits under = lim;
        under.maxMemoryBytes = free.memoryBytes * 95 / 100;
        EXPECT_EQ(explore(ts, under, false, false).status,
                  VerifStatus::LimitExceeded);
    }
}

// ----------------------------------------------------------------
// Capacity tiers x checkpointing: the snapshot layout is canonical,
// so the tier — like the thread count — is a per-run choice.
// ----------------------------------------------------------------

namespace
{

StoreTierOptions
spillTier(const std::string &dir,
          std::uint64_t hotBytes = 1ULL << 30)
{
    StoreTierOptions o;
    o.tier = StoreTier::Delta;
    o.spillDir = dir;
    o.hotBytes = hotBytes;
    return o;
}

/** Regular files left in @p dir (spill slabs are unlinked the moment
 *  they are mapped, so a correct spill tier leaves zero). */
std::size_t
regularFilesIn(const std::string &dir)
{
    std::size_t n = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        n += e.is_regular_file() ? 1 : 0;
    return n;
}

} // namespace

TEST_F(CheckpointTest, SigkillMidSpillLeavesResumableState)
{
    // The crash story must hold while slabs live on disk: a child
    // process exploring with periodic snapshots AND an active spill
    // tier SIGKILLs itself mid-run (no destructors, no cleanup). The
    // parent must find (a) a valid snapshot to resume from and (b) a
    // spill dir with no stranded slab files — slabs are unlinked at
    // map time, so the kernel reclaims them on any death.
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(4, shape);
    const ExploreLimits ref_lim{2'000'000, 120.0};
    const ExploreResult ref = explore(ts, ref_lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);

    TempDir ckptDir;
    TempDir spillDir;
    CheckpointConfig cfg;
    cfg.dir = ckptDir.path();

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: spill eagerly (64 KB hot budget), snapshot every
        // millisecond, pace the walk so the kill lands mid-run, and
        // die WITHOUT unwinding once enough work is on disk.
        CheckpointConfig childCfg = cfg;
        childCfg.everySeconds = 0.001;
        ExploreLimits lim = ref_lim;
        lim.checkpoint = &childCfg;
        lim.store = spillTier(spillDir.path(), 1ULL << 16);
        std::uint64_t seen = 0;
        explore(ts, lim, false, true, [&](const VState &) {
            ::usleep(50);
            if (++seen == 800)
                ::raise(SIGKILL);
        });
        ::_exit(0); // not reached; the raise above is fatal
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    EXPECT_EQ(regularFilesIn(spillDir.path()), 0u)
        << "SIGKILL stranded spill slabs on disk";
    ASSERT_TRUE(snapshotExists(exploreSnapshotPath(cfg)))
        << "no periodic snapshot survived the kill";

    cfg.resume = true;
    ExploreLimits lim = ref_lim;
    lim.checkpoint = &cfg;
    lim.store = spillTier(spillDir.path(), 1ULL << 16);
    const ExploreResult r = explore(ts, lim, false, true);
    EXPECT_TRUE(r.resumed);
    EXPECT_GT(r.restoredStates, 0u);
    expectSameFixpoint(r, ref);
}

TEST_F(CheckpointTest, CrossTierResume)
{
    // Full-state snapshots re-intern on resume, so the tier that
    // WRITES a snapshot places no constraint on the tier that READS
    // it: plain -> delta+spill, delta -> plain, spill -> delta, with
    // a thread-count change thrown in (tier and mode are orthogonal).
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(4, shape);
    const ExploreLimits lim{2'000'000, 120.0};
    const ExploreResult ref = explore(ts, lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);
    const std::uint64_t s = ref.statesExplored;

    TempDir spillDir;
    const StoreTierOptions plain;
    StoreTierOptions delta;
    delta.tier = StoreTier::Delta;
    const StoreTierOptions spill = spillTier(spillDir.path());

    struct Leg
    {
        StoreTierOptions store;
        unsigned threads;
        std::uint64_t interruptAfter; // 0 = run to completion
    };
    const std::vector<std::vector<Leg>> schedules = {
        {{plain, 1, s / 3}, {spill, 1, 0}},
        {{delta, 1, s / 3}, {plain, 1, 0}},
        {{spill, 1, s / 4}, {delta, 4, 0}}, // tier AND mode change
        {{plain, 4, s / 3}, {delta, 1, 0}},
    };
    for (std::size_t k = 0; k < schedules.size(); ++k) {
        SCOPED_TRACE("schedule " + std::to_string(k));
        TempDir dir;
        CheckpointConfig cfg;
        cfg.dir = dir.path();
        ExploreResult r;
        for (std::size_t leg = 0; leg < schedules[k].size(); ++leg) {
            clearInterruptRequest();
            const Leg &L = schedules[k][leg];
            cfg.resume = leg > 0;
            ExploreLimits l = lim;
            l.threads = L.threads;
            l.checkpoint = &cfg;
            l.store = L.store;
            std::atomic<std::uint64_t> seen{0};
            const std::uint64_t thresh =
                L.interruptAfter == 0
                    ? std::numeric_limits<std::uint64_t>::max()
                    : L.interruptAfter;
            r = explore(ts, l, false, true, [&](const VState &) {
                if (seen.fetch_add(1, std::memory_order_relaxed) +
                        1 >=
                    thresh)
                    requestInterrupt();
            });
            if (L.interruptAfter == 0)
                break;
            ASSERT_EQ(r.status, VerifStatus::Interrupted);
        }
        clearInterruptRequest();
        expectSameFixpoint(r, ref);
    }
}

TEST_F(CheckpointTest, CompactSnapshotRoundTripAndRefusals)
{
    // Hash-compacted runs checkpoint fingerprints plus a frontier
    // that carries its own state bytes (fingerprints alone cannot
    // regenerate successors). Such a snapshot resumes ONLY into a
    // compact run with the same fingerprint width — anything else is
    // a usage error, refused before any state is decoded.
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(4, shape);
    StoreTierOptions compact;
    compact.tier = StoreTier::Compact;
    ExploreLimits lim{2'000'000, 120.0};
    lim.store = compact;
    const ExploreResult ref = explore(ts, lim, false, true);
    ASSERT_EQ(ref.status, VerifStatus::Verified);
    ASSERT_TRUE(ref.compactHashes);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    ExploreLimits interrupted = lim;
    interrupted.checkpoint = &cfg;
    std::atomic<std::uint64_t> seen{0};
    const ExploreResult mid =
        explore(ts, interrupted, false, true, [&](const VState &) {
            if (seen.fetch_add(1, std::memory_order_relaxed) + 1 >=
                ref.statesExplored / 2)
                requestInterrupt();
        });
    clearInterruptRequest();
    ASSERT_EQ(mid.status, VerifStatus::Interrupted);
    ASSERT_TRUE(snapshotExists(exploreSnapshotPath(cfg)));

    // Refusal 1: resuming without --compact-hashes must die with a
    // usage error naming the flag (EXPECT_EXIT forks, so the
    // snapshot survives for the real resume below).
    {
        CheckpointConfig r = cfg;
        r.resume = true;
        ExploreLimits l{2'000'000, 120.0};
        l.checkpoint = &r;
        EXPECT_EXIT(explore(ts, l, false, true),
                    ::testing::ExitedWithCode(2),
                    "cannot resume.*--compact-hashes");
    }
    // Refusal 2: resuming with a different fingerprint width.
    {
        CheckpointConfig r = cfg;
        r.resume = true;
        ExploreLimits l = lim;
        l.store.compactBits = 128;
        l.checkpoint = &r;
        EXPECT_EXIT(explore(ts, l, false, true),
                    ::testing::ExitedWithCode(2),
                    "cannot resume.*64-bit fingerprints");
    }

    // The genuine resume matches the uninterrupted compact run,
    // including the reported omission probability.
    cfg.resume = true;
    ExploreLimits resumeLim = lim;
    resumeLim.checkpoint = &cfg;
    const ExploreResult r = explore(ts, resumeLim, false, true);
    EXPECT_TRUE(r.resumed);
    expectSameFixpoint(r, ref);
    EXPECT_TRUE(r.compactHashes);
    EXPECT_EQ(r.omissionProbability, ref.omissionProbability);
}

TEST_F(CheckpointTest, MemoryBoundHonoredWithinFivePercentDeltaTier)
{
    // The ±5% contract of MemoryBoundHonoredWithinFivePercent must
    // survive the delta tier: the accounting counts the anchor/diff
    // byte arena and the (offset|hop) index — not the plain arena —
    // so the boundary sits at the DELTA footprint.
    const TransitionSystem ts = chainSystem(200);
    for (unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        TempDir dir;
        CheckpointConfig cfg;
        cfg.dir = dir.path();
        ExploreLimits lim{1'024, 60.0};
        lim.threads = threads;
        lim.checkpoint = &cfg;
        lim.store.tier = StoreTier::Delta;
        const ExploreResult free = explore(ts, lim, false, false);
        ASSERT_EQ(free.status, VerifStatus::Verified);
        ASSERT_GT(free.memoryBytes, 0u);

        ExploreLimits over = lim;
        over.maxMemoryBytes = free.memoryBytes * 105 / 100;
        EXPECT_EQ(explore(ts, over, false, false).status,
                  VerifStatus::Verified);

        ExploreLimits under = lim;
        under.maxMemoryBytes = free.memoryBytes * 95 / 100;
        EXPECT_EQ(explore(ts, under, false, false).status,
                  VerifStatus::LimitExceeded);
    }
}

TEST_F(CheckpointTest, SpillTierAbsorbsUnderBudgetPressure)
{
    // Same under-budget squeeze, but with a spill dir: the ladder's
    // first rung (shed cold regions — lossless) must absorb the
    // pressure that the delta test above shows is otherwise fatal.
    // mmap'd hot regions ARE charged (the free-run footprint is
    // nonzero and comparable to delta's); shedding un-charges them.
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(3, shape);
    const ExploreResult ref = explore(ts, {2'000'000, 60.0});
    ASSERT_EQ(ref.status, VerifStatus::Verified);

    for (unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        TempDir spillDir;
        ExploreLimits lim{2'000'000, 60.0};
        lim.threads = threads;
        lim.store = spillTier(spillDir.path());
        const ExploreResult free = explore(ts, lim, false, false);
        ASSERT_EQ(free.status, VerifStatus::Verified);
        ASSERT_GT(free.memoryBytes, 0u);
        ASSERT_EQ(free.spillSheds, 0u);

        ExploreLimits under = lim;
        under.maxMemoryBytes = free.memoryBytes * 95 / 100;
        const ExploreResult r = explore(ts, under, false, false);
        EXPECT_EQ(r.status, VerifStatus::Verified);
        EXPECT_GE(r.spillSheds, 1u);
        EXPECT_EQ(r.statesExplored, ref.statesExplored);
        EXPECT_EQ(r.transitionsFired, ref.transitionsFired);
    }
}

// ----------------------------------------------------------------
// Random-walk checkpoint/resume.
// ----------------------------------------------------------------

TEST_F(CheckpointTest, WalkImmediateInterruptThenResumeMatches)
{
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(3, VerifFeatures::neoMESI(), shape);
    WalkOptions wopt;
    wopt.walks = 64;
    wopt.depth = 128;
    wopt.seed = 7;
    wopt.threads = 4;
    const WalkResult ref = walkExplore(ts, wopt);
    ASSERT_EQ(ref.status, VerifStatus::Verified);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    WalkOptions copt = wopt;
    copt.checkpoint = &cfg;

    // Deterministic: the interrupt is already pending, so no walk
    // completes before the snapshot.
    requestInterrupt();
    const WalkResult r1 = walkExplore(ts, copt);
    clearInterruptRequest();
    EXPECT_EQ(r1.status, VerifStatus::Interrupted);
    EXPECT_TRUE(snapshotExists(walkSnapshotPath(cfg)));

    cfg.resume = true;
    const WalkResult r2 = walkExplore(ts, copt);
    EXPECT_TRUE(r2.resumed);
    EXPECT_EQ(r2.status, ref.status);
    EXPECT_EQ(r2.stepsTaken, ref.stepsTaken);
    EXPECT_EQ(r2.walksRun, ref.walksRun);
    EXPECT_EQ(r2.deadEnds, ref.deadEnds);
    EXPECT_FALSE(snapshotExists(walkSnapshotPath(cfg)));
}

TEST_F(CheckpointTest, WalkMidRunInterruptThenResumeMatches)
{
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(3, VerifFeatures::neoMESI(), shape);
    WalkOptions wopt;
    wopt.walks = 512;
    wopt.depth = 256;
    wopt.seed = 11;
    wopt.threads = 4;
    const WalkResult ref = walkExplore(ts, wopt);
    ASSERT_EQ(ref.status, VerifStatus::Verified);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    WalkOptions copt = wopt;
    copt.checkpoint = &cfg;

    // Race a SIGTERM-equivalent against the run; wherever it lands —
    // even after the finish line — the chain below converges on the
    // reference totals because completed walks never recount.
    std::thread killer([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        requestInterrupt();
    });
    WalkResult r = walkExplore(ts, copt);
    killer.join();
    clearInterruptRequest();

    int guard = 0;
    while (r.status == VerifStatus::Interrupted && guard++ < 8) {
        cfg.resume = true;
        r = walkExplore(ts, copt);
    }
    ASSERT_NE(r.status, VerifStatus::Interrupted);
    EXPECT_EQ(r.status, ref.status);
    EXPECT_EQ(r.stepsTaken, ref.stepsTaken);
    EXPECT_EQ(r.walksRun, ref.walksRun);
    EXPECT_EQ(r.deadEnds, ref.deadEnds);
}

TEST_F(CheckpointTest, WalkResumeReproducesMutantViolation)
{
    const Mutant *m = findMutant("leaf_silent_upgrade");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    const TransitionSystem ts = m->build(shape);
    WalkOptions wopt;
    wopt.walks = m->budgetWalks;
    wopt.depth = m->budgetDepth;
    wopt.seed = m->budgetSeed;
    wopt.threads = 2;
    const WalkResult ref = walkExplore(ts, wopt);
    ASSERT_EQ(ref.status, VerifStatus::InvariantViolated);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    WalkOptions copt = wopt;
    copt.checkpoint = &cfg;
    requestInterrupt();
    WalkResult r = walkExplore(ts, copt);
    clearInterruptRequest();
    ASSERT_EQ(r.status, VerifStatus::Interrupted);

    cfg.resume = true;
    r = walkExplore(ts, copt);
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(r.walkIndex, ref.walkIndex);
    EXPECT_EQ(r.violatedInvariant, ref.violatedInvariant);
    EXPECT_EQ(r.trace, ref.trace);
}

TEST_F(CheckpointTest, WalkResumeRejectsChangedSeedOrDepth)
{
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(2, VerifFeatures::neoMESI(), shape);
    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    WalkOptions wopt;
    wopt.walks = 32;
    wopt.depth = 64;
    wopt.seed = 3;
    wopt.checkpoint = &cfg;
    requestInterrupt();
    const WalkResult r = walkExplore(ts, wopt);
    clearInterruptRequest();
    ASSERT_EQ(r.status, VerifStatus::Interrupted);

    cfg.resume = true;
    WalkOptions badSeed = wopt;
    badSeed.seed = 4;
    EXPECT_EXIT(walkExplore(ts, badSeed),
                ::testing::ExitedWithCode(2),
                "cannot resume.*--seed");
    WalkOptions badDepth = wopt;
    badDepth.depth = 65;
    EXPECT_EXIT(walkExplore(ts, badDepth),
                ::testing::ExitedWithCode(2),
                "cannot resume.*--depth");
}

// ----------------------------------------------------------------
// Parametric-sweep checkpoint/resume.
// ----------------------------------------------------------------

TEST_F(CheckpointTest, SweepKillResumeConvergesIdentically)
{
    const ExploreLimits lim{2'000'000, 120.0};
    const ParametricResult ref =
        verifyParametric(germanModelFactory(), 1, 5, lim);
    ASSERT_TRUE(ref.converged);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    ExploreLimits clim = lim;
    clim.checkpoint = &cfg;

    // Interrupt mid-sweep (the timer usually lands inside one of the
    // larger instances); resume until the sweep finishes.
    std::thread killer([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        requestInterrupt();
    });
    ParametricResult r =
        verifyParametric(germanModelFactory(), 1, 5, clim);
    killer.join();
    clearInterruptRequest();

    int guard = 0;
    while (r.status == VerifStatus::Interrupted && guard++ < 8) {
        cfg.resume = true;
        r = verifyParametric(germanModelFactory(), 1, 5, clim);
    }
    ASSERT_NE(r.status, VerifStatus::Interrupted);
    EXPECT_EQ(r.status, ref.status);
    EXPECT_EQ(r.converged, ref.converged);
    EXPECT_EQ(r.cutoff, ref.cutoff);
    EXPECT_EQ(r.instanceSizes, ref.instanceSizes);
    EXPECT_EQ(r.abstractSetSizes, ref.abstractSetSizes);
    ASSERT_EQ(r.perInstance.size(), ref.perInstance.size());
    for (std::size_t i = 0; i < ref.perInstance.size(); ++i) {
        EXPECT_EQ(r.perInstance[i].statesExplored,
                  ref.perInstance[i].statesExplored);
        EXPECT_EQ(r.perInstance[i].transitionsFired,
                  ref.perInstance[i].transitionsFired);
    }
    // Converged sweeps leave no snapshots behind.
    EXPECT_FALSE(snapshotExists(sweepSnapshotPath(cfg)));
    EXPECT_FALSE(snapshotExists(exploreSnapshotPath(cfg)));
}

TEST_F(CheckpointTest, SweepImmediateInterruptResumesFromScratch)
{
    const ExploreLimits lim{2'000'000, 120.0};
    const ParametricResult ref =
        verifyParametric(germanModelFactory(), 1, 5, lim);

    TempDir dir;
    CheckpointConfig cfg;
    cfg.dir = dir.path();
    ExploreLimits clim = lim;
    clim.checkpoint = &cfg;
    requestInterrupt();
    ParametricResult r =
        verifyParametric(germanModelFactory(), 1, 5, clim);
    clearInterruptRequest();
    // The pending signal either stops the sweep before instance 1 or
    // inside it; both leave a resumable snapshot trail.
    ASSERT_EQ(r.status, VerifStatus::Interrupted);
    EXPECT_TRUE(snapshotExists(sweepSnapshotPath(cfg)) ||
                snapshotExists(exploreSnapshotPath(cfg)));

    cfg.resume = true;
    r = verifyParametric(germanModelFactory(), 1, 5, clim);
    EXPECT_EQ(r.status, ref.status);
    EXPECT_EQ(r.converged, ref.converged);
    EXPECT_EQ(r.cutoff, ref.cutoff);
    EXPECT_EQ(r.abstractSetSizes, ref.abstractSetSizes);
}

// ----------------------------------------------------------------
// Serialization primitives.
// ----------------------------------------------------------------

TEST_F(CheckpointTest, WriterReaderRoundTrip)
{
    SnapshotWriter w;
    w.putU8(0xab);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefULL);
    w.putF64(3.25);
    const VState s = {1, 2, 3, 4};
    w.putState(s);

    SnapshotReader r(w.buffer());
    EXPECT_EQ(r.getU8(), 0xab);
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.getF64(), 3.25);
    VState s2;
    EXPECT_TRUE(r.getState(4, s2));
    EXPECT_EQ(s2, s);
    EXPECT_TRUE(r.atEnd());

    // Over-read latches ok() false and never throws.
    EXPECT_EQ(r.getU64(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST_F(CheckpointTest, Crc32MatchesKnownVector)
{
    // IEEE CRC-32 of "123456789" is the classic check value.
    const char *msg = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(msg), 9),
              0xcbf43926u);
}

TEST_F(CheckpointTest, FingerprintDistinguishesModels)
{
    ModelShape s1, s2, s3;
    const std::uint64_t german3 =
        modelFingerprint(buildGermanModel(3, s1));
    const std::uint64_t german4 =
        modelFingerprint(buildGermanModel(4, s2));
    const std::uint64_t closed3 = modelFingerprint(
        buildClosedModel(3, VerifFeatures::neoMESI(), s3));
    EXPECT_NE(german3, german4);
    EXPECT_NE(german3, closed3);
    ModelShape s4;
    EXPECT_EQ(german3, modelFingerprint(buildGermanModel(3, s4)));
}
