/**
 * @file
 * Simulator-to-model conformance: the README claims the simulator
 * protocol and the verification models "stay honest with each other".
 * This makes it literal: every message-driven L1 line transition
 * observed during randomized simulation must appear in the allowed
 * transition relation of the verified leaf state machine.
 *
 * The table below IS the leaf state machine of the models
 * (src/verif/models/*): if someone extends the simulator's L1 with a
 * transition the verified models do not cover, this test fails and
 * points at the gap.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <sstream>
#include <tuple>

#include "core/system.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

using Transition = std::tuple<L1State, MsgType, L1State>;

/** The allowed (pre, message, post) relation of the verified leaf
 *  machine, plus the documented NS/non-blocking extensions. */
std::set<Transition>
allowedTransitions(const ProtocolConfig &cfg)
{
    using S = L1State;
    using M = MsgType;
    std::set<Transition> ok = {
        // Data grants.
        {S::IS_D, M::Data, S::S},
        {S::IM_D, M::Data, S::M},
        {S::SM_D, M::Data, S::M},
        // Invalidations.
        {S::S, M::Inv, S::I},
        {S::M, M::Inv, S::I},
        {S::SM_D, M::Inv, S::IM_D},
        {S::SI_A, M::Inv, S::II_A},
        {S::MI_A, M::Inv, S::II_A},
        // Forwards to the owner.
        {S::M, M::FwdGetS, S::S},
        {S::M, M::FwdGetM, S::I},
        {S::MI_A, M::FwdGetS, S::SI_A},
        {S::MI_A, M::FwdGetM, S::II_A},
        // Eviction completions.
        {S::SI_A, M::PutAck, S::I},
        {S::MI_A, M::PutAck, S::I},
        {S::II_A, M::PutAck, S::I},
    };
    if (cfg.exclusiveState) {
        ok.insert({S::IS_D, M::Data, S::E});
        ok.insert({S::E, M::Inv, S::I});
        ok.insert({S::E, M::FwdGetS, cfg.ownedState ? S::O : S::S});
        ok.insert({S::E, M::FwdGetM, S::I});
        ok.insert({S::EI_A, M::Inv, S::II_A});
        ok.insert({S::EI_A, M::FwdGetS,
                   cfg.ownedState ? S::EI_A : S::SI_A});
        ok.insert({S::EI_A, M::FwdGetM, S::II_A});
        ok.insert({S::EI_A, M::PutAck, S::I});
    }
    if (cfg.ownedState) {
        ok.insert({S::M, M::FwdGetS, S::O});
        ok.insert({S::O, M::Inv, S::I});
        ok.insert({S::O, M::FwdGetS, S::O});
        ok.insert({S::O, M::FwdGetM, S::I});
        ok.insert({S::OM_D, M::Data, S::M});
        ok.insert({S::OM_D, M::Inv, S::IM_D});
        ok.insert({S::OI_A, M::Inv, S::II_A});
        ok.insert({S::OI_A, M::FwdGetS, S::OI_A});
        ok.insert({S::OI_A, M::FwdGetM, S::II_A});
        ok.insert({S::OI_A, M::PutAck, S::I});
    }
    if (cfg.nonBlockingDir) {
        // The documented back-to-back races (DESIGN.md deviations).
        ok.insert({S::IS_D, M::Inv, S::IS_D_I});
        ok.insert({S::IS_D_I, M::Data, S::I});
        ok.insert({S::IS_D_I, M::Inv, S::IS_D_I});
        ok.insert({S::IS_D_I, M::FwdGetS, S::IS_D_I});
        ok.insert({S::IS_D_I, M::FwdGetM, S::IS_D_I});
        ok.insert({S::IS_D, M::FwdGetS, S::IS_D_F});
        ok.insert({S::IS_D, M::FwdGetM, S::IS_D_F});
        ok.insert({S::IS_D_F, M::FwdGetS, S::IS_D_F});
        ok.insert({S::IS_D_F, M::FwdGetM, S::IS_D_F});
        for (S fin : {S::I, S::S, S::E, S::O, S::M})
            ok.insert({S::IS_D_F, M::Data, fin});
        ok.insert({S::IM_D, M::FwdGetS, S::IM_D_F});
        ok.insert({S::IM_D, M::FwdGetM, S::IM_D_F});
        ok.insert({S::SM_D, M::FwdGetS, S::IM_D_F});
        ok.insert({S::SM_D, M::FwdGetM, S::IM_D_F});
        ok.insert({S::IM_D_F, M::FwdGetS, S::IM_D_F});
        ok.insert({S::IM_D_F, M::FwdGetM, S::IM_D_F});
        ok.insert({S::IM_D_F, M::Inv, S::IM_D_F});
        for (S fin : {S::I, S::O, S::M})
            ok.insert({S::IM_D_F, M::Data, fin});
        ok.insert({S::OM_D, M::FwdGetS, S::OM_D});
        ok.insert({S::OM_D, M::FwdGetM, S::IM_D});
        ok.insert({S::SI_A, M::FwdGetS, S::SI_A});
        ok.insert({S::SI_A, M::FwdGetM, S::II_A});
        // Stale serves against already-dropped lines.
        ok.insert({S::I, M::Inv, S::I});
        ok.insert({S::I, M::FwdGetS, S::I});
        ok.insert({S::I, M::FwdGetM, S::I});
    }
    return ok;
}

class Conformance : public ::testing::TestWithParam<ProtocolVariant>
{
};

TEST_P(Conformance, ObservedTransitionsAreInTheVerifiedRelation)
{
    const ProtocolConfig cfg =
        ProtocolConfig::forVariant(GetParam());
    const std::set<Transition> allowed = allowedTransitions(cfg);

    EventQueue eventq;
    HierarchySpec spec = tinyTree(GetParam(), 3, 3);
    System system(spec, eventq);

    std::set<Transition> observed;
    std::vector<std::string> violations;
    for (std::size_t i = 0; i < system.numL1s(); ++i) {
        system.l1(i).setTransitionObserver(
            [&](Addr, L1State pre, MsgType m, L1State post) {
                const Transition t{pre, m, post};
                observed.insert(t);
                if (!allowed.count(t)) {
                    std::ostringstream os;
                    os << l1StateName(pre) << " --"
                       << msgTypeName(m) << "--> "
                       << l1StateName(post);
                    violations.push_back(os.str());
                }
            });
    }

    const auto cores = static_cast<unsigned>(system.numL1s());
    Random rng(31337);
    std::vector<unsigned> left(cores, 500);
    std::function<void(unsigned)> issue = [&](unsigned c) {
        if (left[c]-- == 0)
            return;
        system.l1(c).coreRequest(rng.below(24) * 64, rng.chance(0.5),
                                 [&issue, c] { issue(c); });
    };
    for (unsigned c = 0; c < cores; ++c)
        issue(c);
    eventq.run(maxTick, 80'000'000);
    ASSERT_TRUE(eventq.empty());

    for (const auto &v : violations)
        ADD_FAILURE() << "unmodeled transition: " << v;

    // The run must have real coverage, not vacuous success.
    EXPECT_GT(observed.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, Conformance,
    ::testing::Values(ProtocolVariant::TreeMSI, ProtocolVariant::NeoMESI,
                      ProtocolVariant::NSMESI, ProtocolVariant::NSMOESI),
    [](const ::testing::TestParamInfo<ProtocolVariant> &info) {
        std::string n = protocolName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
