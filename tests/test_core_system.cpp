/**
 * @file
 * Tests for the system builder and experiment runner: the Figure 7
 * organizations, arbitrary-tree construction, leaf-level directory
 * classification, multi-trial statistics, and deadlock-freedom of the
 * verification models (detect_deadlock mode).
 */

#include <gtest/gtest.h>

#include "core/sim_runner.hpp"
#include "test_util.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

TEST(Organizations, Figure7Shapes)
{
    struct Case
    {
        const char *name;
        std::size_t dirs;
    };
    // Skewed: L3 + 16 private L2s + 1 shared L2; 2perL2: L3 + 16 L2s;
    // 8perL2: L3 + 4 L2s.
    const Case cases[] = {{"skewed", 18}, {"2perL2", 17},
                          {"8perL2", 5}};
    for (const Case &c : cases) {
        EventQueue eventq;
        HierarchySpec spec =
            organizationByName(c.name, ProtocolVariant::NeoMESI);
        System system(spec, eventq);
        EXPECT_EQ(system.numL1s(), 32u) << c.name;
        EXPECT_EQ(system.numDirs(), c.dirs) << c.name;
        EXPECT_TRUE(system.root().isRoot());
    }
}

TEST(Organizations, UnknownNameIsFatal)
{
    // neo_fatal exits with the unified usage-error code
    // (exit_codes.hpp: kExitUsage = 2).
    EXPECT_EXIT(organizationByName("bogus", ProtocolVariant::NeoMESI),
                ::testing::ExitedWithCode(2), "unknown organization");
}

TEST(Organizations, SkewedIsActuallySkewed)
{
    EventQueue eventq;
    System system(skewedOrg(ProtocolVariant::NeoMESI), eventq);
    // One L2 has 16 children, sixteen L2s have 1 child.
    std::size_t wide = 0, narrow = 0;
    for (std::size_t d = 0; d < system.numDirs(); ++d) {
        if (system.dir(d).isRoot())
            continue;
        const auto n = system.dir(d).numChildren();
        if (n == 16)
            ++wide;
        else if (n == 1)
            ++narrow;
    }
    EXPECT_EQ(wide, 1u);
    EXPECT_EQ(narrow, 16u);
}

TEST(SystemBuilder, LeafLevelDirsClassification)
{
    EventQueue eventq;
    HierarchySpec spec = deepTree(ProtocolVariant::NeoMESI);
    System system(spec, eventq);
    const auto leaf_dirs = system.leafLevelDirs();
    // deepTree: 2 L2s in arm A + 1 L2 in arm B + 1 L2 in arm C are
    // leaf-level; the mid dir and the root are not.
    EXPECT_EQ(leaf_dirs.size(), 4u);
    for (const auto *d : leaf_dirs)
        EXPECT_FALSE(d->isRoot());
}

TEST(SimRunner, TrialsVaryBySeed)
{
    HierarchySpec spec = tinyTree(ProtocolVariant::NeoMESI, 2, 2);
    WorkloadParams wl;
    wl.privateBlocksPerCore = 32;
    wl.sharedBlocks = 16;
    wl.sharedFraction = 0.3;
    RunConfig cfg;
    cfg.opsPerCore = 500;
    const TrialSummary t = runTrials(spec, wl, cfg, 3);
    EXPECT_TRUE(t.allCoherent);
    EXPECT_EQ(t.runtime.count(), 3u);
    // Different seeds must produce different (but close) runtimes.
    EXPECT_GT(t.runtime.stdev(), 0.0);
    EXPECT_LT(t.runtime.stdev(), 0.2 * t.runtime.mean());
}

TEST(SimRunner, DeterministicForFixedSeed)
{
    HierarchySpec spec = tinyTree(ProtocolVariant::NSMOESI, 2, 2);
    WorkloadParams wl;
    wl.privateBlocksPerCore = 16;
    wl.sharedBlocks = 8;
    wl.sharedFraction = 0.4;
    RunConfig cfg;
    cfg.opsPerCore = 300;
    cfg.seed = 12345;
    const RunResult a = runOnce(spec, wl, cfg);
    const RunResult b = runOnce(spec, wl, cfg);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.networkMessages, b.networkMessages);
}

TEST(SimRunner, ProtocolsSeeSameWorkload)
{
    // The evaluation's premise: identical streams across protocols.
    WorkloadParams wl;
    wl.privateBlocksPerCore = 16;
    wl.sharedBlocks = 8;
    wl.sharedFraction = 0.4;
    RunConfig cfg;
    cfg.opsPerCore = 300;
    RunResult results[2];
    int k = 0;
    for (ProtocolVariant v :
         {ProtocolVariant::NeoMESI, ProtocolVariant::NSMOESI}) {
        results[k++] =
            runOnce(tinyTree(v, 2, 2), wl, cfg);
    }
    // Same per-core op streams -> the same total op count; hits,
    // misses and upgrades partition it differently per protocol (the
    // O state turns some upgrades into hits).
    for (const RunResult &r : results) {
        EXPECT_EQ(r.l1Hits + r.l1Misses + r.l1Upgrades,
                  300u * 4u);
    }
}

TEST(VerifModels, DeadlockFree)
{
    using namespace neo::verif;
    ModelShape shape;
    const auto closed = explore(
        buildClosedModel(2, VerifFeatures::neoMESI(), shape),
        ExploreLimits{5'000'000, 120.0}, /*detect_deadlock=*/true);
    EXPECT_EQ(closed.status, VerifStatus::Verified)
        << closed.badState;
    const auto open = explore(
        buildOpenModel(2, VerifFeatures::neoMESI(),
                       CompositionMethod::None, shape),
        ExploreLimits{5'000'000, 120.0}, /*detect_deadlock=*/true);
    EXPECT_EQ(open.status, VerifStatus::Verified) << open.badState;
}

} // namespace
