/**
 * @file
 * Directed unit tests for the directory controller in isolation: a
 * fake parent and fake leaf children drive exact message sequences at
 * one DirController and assert each response — the corner branches
 * (stale Puts, relayed fetches, recursive invalidation, external
 * forwards) that system-level tests only hit statistically.
 */

#include <gtest/gtest.h>

#include <deque>

#include "mem/cache_array.hpp"
#include "protocol/dir_controller.hpp"

using namespace neo;

namespace
{

/** Records everything delivered to it; can originate messages. */
class FakeNode : public MessageConsumer
{
  public:
    FakeNode(TreeNetwork &net, NodeId parent) : net_(net)
    {
        id_ = net.addNode(this, parent);
    }

    void
    deliver(MessagePtr msg) override
    {
        auto *cm = dynamic_cast<CoherenceMsg *>(msg.get());
        ASSERT_NE(cm, nullptr);
        msg.release();
        inbox.emplace_back(cm);
    }

    void
    send(MsgType t, Addr addr, NodeId dst,
         const std::function<void(CoherenceMsg &)> &tweak = {})
    {
        auto m = makeMsg(t, addr, id_, dst);
        if (tweak)
            tweak(*m);
        net_.deliver(std::move(m));
    }

    /** Pop the oldest received message, requiring the given type. */
    std::unique_ptr<CoherenceMsg>
    expect(MsgType t)
    {
        EXPECT_FALSE(inbox.empty())
            << "expected " << msgTypeName(t) << ", got nothing";
        if (inbox.empty())
            return nullptr;
        std::unique_ptr<CoherenceMsg> m = std::move(inbox.front());
        inbox.pop_front();
        EXPECT_EQ(m->type, t) << "got " << m->describe();
        return m;
    }

    NodeId id() const { return id_; }
    std::deque<std::unique_ptr<CoherenceMsg>> inbox;

  private:
    TreeNetwork &net_;
    NodeId id_ = invalidNode;
};

class DirDirected : public ::testing::Test
{
  protected:
    DirDirected()
        : net_("net", eventq_, NetworkParams{}),
          parent_(net_, invalidNode)
    {
        dir_ = std::make_unique<DirController>(
            "dut", eventq_, net_, parent_.id(),
            CacheGeometry{32 * 64, 4, 64, 1},
            ProtocolConfig::forVariant(ProtocolVariant::NeoMESI));
        childA_ = std::make_unique<FakeNode>(net_, dir_->nodeId());
        childB_ = std::make_unique<FakeNode>(net_, dir_->nodeId());
    }

    void settle() { eventq_.run(); }

    /** Walk the DUT to "A owns block in E" via a relayed GetS. */
    void
    grantEToA(Addr addr)
    {
        childA_->send(MsgType::GetS, addr, dir_->nodeId());
        settle();
        parent_.expect(MsgType::GetS);
        parent_.send(MsgType::Data, addr, dir_->nodeId(),
                      [](CoherenceMsg &m) { m.grant = Perm::E; });
        settle();
        auto data = childA_->expect(MsgType::Data);
        ASSERT_EQ(data->grant, Perm::E);
        childA_->send(MsgType::Unblock, addr, dir_->nodeId());
        settle();
        parent_.expect(MsgType::Unblock);
        ASSERT_EQ(dir_->blockPerm(addr), Perm::E);
    }

    EventQueue eventq_;
    TreeNetwork net_;
    FakeNode parent_;
    std::unique_ptr<DirController> dir_;
    std::unique_ptr<FakeNode> childA_, childB_;
};

TEST_F(DirDirected, RelayedReadGrantsAndUnblocksUpward)
{
    grantEToA(0x100);
    EXPECT_TRUE(dir_->quiescent());
}

TEST_F(DirDirected, StalePutIsAckedWithoutStateDamage)
{
    grantEToA(0x100);
    // child B was never a holder: its PutS must be acked as stale and
    // must not disturb A's ownership.
    childB_->send(MsgType::PutS, 0x100, dir_->nodeId());
    settle();
    childB_->expect(MsgType::PutAck);
    EXPECT_EQ(dir_->blockPerm(0x100), Perm::E);
    // A can still be reached as owner: B's GetS forwards to A.
    childB_->send(MsgType::GetS, 0x100, dir_->nodeId());
    settle();
    auto fwd = childA_->expect(MsgType::FwdGetS);
    EXPECT_EQ(fwd->target, childB_->id());
}

TEST_F(DirDirected, OwnerPutMakesTheDirTheSupplier)
{
    grantEToA(0x140);
    childA_->send(MsgType::PutE, 0x140, dir_->nodeId());
    settle();
    childA_->expect(MsgType::PutAck);
    // Next reader is served from the directory's copy — no forward.
    childB_->send(MsgType::GetS, 0x140, dir_->nodeId());
    settle();
    EXPECT_TRUE(childA_->inbox.empty());
    auto data = childB_->expect(MsgType::Data);
    EXPECT_EQ(data->grant, Perm::E); // sole holder again
    childB_->send(MsgType::Unblock, 0x140, dir_->nodeId());
    settle();
}

TEST_F(DirDirected, ParentInvRecursivelyInvalidatesAndAcks)
{
    // Two local sharers via parent grant S.
    childA_->send(MsgType::GetS, 0x180, dir_->nodeId());
    settle();
    parent_.expect(MsgType::GetS);
    parent_.send(MsgType::Data, 0x180, dir_->nodeId(),
                  [](CoherenceMsg &m) { m.grant = Perm::S; });
    settle();
    childA_->expect(MsgType::Data);
    childA_->send(MsgType::Unblock, 0x180, dir_->nodeId());
    settle();
    parent_.expect(MsgType::Unblock);
    childB_->send(MsgType::GetS, 0x180, dir_->nodeId());
    settle();
    childB_->expect(MsgType::Data);
    childB_->send(MsgType::Unblock, 0x180, dir_->nodeId());
    settle();

    // Parent invalidates: both children must see Inv; the InvAck goes
    // up only after both acks are in.
    parent_.send(MsgType::Inv, 0x180, dir_->nodeId());
    settle();
    childA_->expect(MsgType::Inv);
    childB_->expect(MsgType::Inv);
    EXPECT_TRUE(parent_.inbox.empty()) << "acked before children";
    childA_->send(MsgType::InvAck, 0x180, dir_->nodeId());
    settle();
    EXPECT_TRUE(parent_.inbox.empty()) << "acked after one of two";
    childB_->send(MsgType::InvAck, 0x180, dir_->nodeId());
    settle();
    parent_.expect(MsgType::InvAck);
    EXPECT_EQ(dir_->blockPerm(0x180), Perm::I);
}

TEST_F(DirDirected, ExternalForwardFetchesFromOwnerAndRepliesSideways)
{
    grantEToA(0x1c0);
    // The parent forwards an external reader (some sibling of the
    // DUT, modeled by the parent's own id as target).
    parent_.send(MsgType::FwdGetS, 0x1c0, dir_->nodeId(),
                  [this](CoherenceMsg &m) {
                      m.target = parent_.id();
                  });
    settle();
    auto fwd = childA_->expect(MsgType::FwdGetS);
    EXPECT_TRUE(fwd->respondToParent); // NeoMESI relays via the DUT
    // Owner returns the data to the DUT, which replies to the target.
    childA_->send(MsgType::Data, 0x1c0, dir_->nodeId(),
                  [](CoherenceMsg &m) {
                      m.grant = Perm::S;
                      m.dirty = false;
                  });
    settle();
    auto data = parent_.expect(MsgType::Data);
    EXPECT_EQ(data->grant, Perm::S);
    EXPECT_EQ(dir_->blockPerm(0x1c0), Perm::S);
}

TEST_F(DirDirected, WriteUpgradeInvalidatesLocalSharerBeforeGrant)
{
    // A shares via the parent (grant S)...
    childA_->send(MsgType::GetS, 0x200, dir_->nodeId());
    settle();
    parent_.expect(MsgType::GetS);
    parent_.send(MsgType::Data, 0x200, dir_->nodeId(),
                 [](CoherenceMsg &m) { m.grant = Perm::S; });
    settle();
    childA_->expect(MsgType::Data);
    childA_->send(MsgType::Unblock, 0x200, dir_->nodeId());
    settle();
    parent_.expect(MsgType::Unblock);
    // ...and B is then served from the directory's own S copy.
    childB_->send(MsgType::GetS, 0x200, dir_->nodeId());
    settle();
    childB_->expect(MsgType::Data);
    childB_->send(MsgType::Unblock, 0x200, dir_->nodeId());
    settle();
    EXPECT_TRUE(parent_.inbox.empty()) << "local read leaked upward";

    // A upgrades: the DUT must relay GetM (its Permission is S).
    childA_->send(MsgType::GetM, 0x200, dir_->nodeId());
    settle();
    parent_.expect(MsgType::GetM);
    parent_.send(MsgType::Data, 0x200, dir_->nodeId(),
                  [](CoherenceMsg &m) { m.grant = Perm::M; });
    settle();
    // B must be invalidated before A's grant is dispatched.
    childB_->expect(MsgType::Inv);
    EXPECT_TRUE(childA_->inbox.empty()) << "granted before the ack";
    childB_->send(MsgType::InvAck, 0x200, dir_->nodeId());
    settle();
    auto data = childA_->expect(MsgType::Data);
    EXPECT_EQ(data->grant, Perm::M);
    childA_->send(MsgType::Unblock, 0x200, dir_->nodeId(),
                  [](CoherenceMsg &m) { m.dirty = true; });
    settle();
    parent_.expect(MsgType::Unblock);
    EXPECT_EQ(dir_->blockPerm(0x200), Perm::M);
}

} // namespace
