/**
 * @file
 * Directed boundary tests for ExploreLimits in BOTH explorers.
 *
 * The §4 methodology study runs Cubicle-style bounded sessions (the
 * paper's 2-day / 50 GB budget); our analogue must be exact at the
 * boundary: a budget equal to the reachable count stops with
 * LimitExceeded (the bound check fires while the frontier is still
 * nonempty), one state more verifies, a zero time budget stops
 * immediately, and a limit-exceeded run must NEVER report a spurious
 * violation — its violatedInvariant and trace stay empty even on
 * models that do contain a reachable violation past the bound.
 *
 * Every boundary is checked under all three capacity tiers (plain,
 * delta, compact): the tier changes how visited states are STORED,
 * never where a bound trips or what a verdict says.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "verif/explorer.hpp"
#include "verif/models/mutants.hpp"
#include "verif/parallel_explorer.hpp"

using namespace neo;
using neo::verif::findMutant;
using neo::verif::Mutant;

namespace
{

/** x steps 0..max and wraps: exactly max+1 reachable states. */
TransitionSystem
counterSystem(std::uint8_t max)
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    ts.addRule(
        "inc", ActionKind::Internal,
        [x, max](const VState &s) { return s[x] < max; },
        [x](VState &s) { ++s[x]; });
    ts.addRule(
        "wrap", ActionKind::Internal,
        [x, max](const VState &s) { return s[x] == max; },
        [x](VState &s) { s[x] = 0; });
    ts.addInvariant("True", [](const VState &) { return true; });
    return ts;
}

constexpr std::uint64_t kReach = 10; // counterSystem(9)

/** (worker threads, state-store tier). */
using BoundaryParam = std::tuple<unsigned, StoreTier>;

ExploreLimits
limitsWith(const BoundaryParam &p)
{
    ExploreLimits lim;
    lim.threads = std::get<0>(p);
    lim.maxStates = 1'000'000;
    lim.maxSeconds = 60.0;
    lim.maxMemoryBytes = 0;
    lim.store.tier = std::get<1>(p);
    return lim;
}

ExploreResult
run(const TransitionSystem &ts, const ExploreLimits &lim)
{
    return lim.threads > 1 ? exploreParallel(ts, lim)
                           : explore(ts, lim);
}

void
expectNoSpuriousViolation(const ExploreResult &r)
{
    EXPECT_EQ(r.status, VerifStatus::LimitExceeded);
    EXPECT_TRUE(r.violatedInvariant.empty())
        << "limit-exceeded run reported invariant "
        << r.violatedInvariant;
    EXPECT_TRUE(r.trace.empty());
    EXPECT_TRUE(r.badState.empty());
}

class ExploreLimitsBoundary
    : public ::testing::TestWithParam<BoundaryParam>
{
};

} // namespace

TEST_P(ExploreLimitsBoundary, MaxStatesEqualToReachableIsExceeded)
{
    TransitionSystem ts = counterSystem(9);
    ExploreLimits lim = limitsWith(GetParam());
    lim.maxStates = kReach;
    const ExploreResult r = run(ts, lim);
    expectNoSpuriousViolation(r);
    EXPECT_LE(r.statesExplored, kReach);
}

TEST_P(ExploreLimitsBoundary, MaxStatesOnePastReachableVerifies)
{
    TransitionSystem ts = counterSystem(9);
    ExploreLimits lim = limitsWith(GetParam());
    lim.maxStates = kReach + 1;
    const ExploreResult r = run(ts, lim);
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_EQ(r.statesExplored, kReach);
}

/** Regression for the batched-firing engines: one expansion of the
 *  initial state fires a 16-wide fan of successors in a single batch,
 *  and a budget smaller than the fan must cut the batch mid-way —
 *  exactly maxStates states explored, never maxStates + batch size.
 *  (Sequentially the partial batch is rolled back and the item
 *  re-queued; in parallel a token budget admits fresh states one
 *  insertion at a time.) */
TEST_P(ExploreLimitsBoundary, MaxStatesBoundaryHoldsMidBatch)
{
    constexpr int kWidth = 16;
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    for (int k = 1; k <= kWidth; ++k) {
        ts.addRule(
            "fan" + std::to_string(k), ActionKind::Internal,
            [x](const VState &s) { return s[x] == 0; },
            [x, k](VState &s) {
                s[x] = static_cast<std::uint8_t>(k);
            });
    }
    ts.addInvariant("True", [](const VState &) { return true; });

    for (const std::uint64_t cap : {2u, 5u, 9u, 16u}) {
        ExploreLimits lim = limitsWith(GetParam());
        lim.maxStates = cap;
        const ExploreResult r = run(ts, lim);
        expectNoSpuriousViolation(r);
        EXPECT_EQ(r.statesExplored, cap)
            << "budget " << cap << " not exact mid-batch";
    }
}

TEST_P(ExploreLimitsBoundary, ZeroSecondsStopsImmediately)
{
    TransitionSystem ts = counterSystem(9);
    ExploreLimits lim = limitsWith(GetParam());
    lim.maxSeconds = 0.0;
    const ExploreResult r = run(ts, lim);
    expectNoSpuriousViolation(r);
}

TEST_P(ExploreLimitsBoundary, TinyMemoryBoundIsExceeded)
{
    TransitionSystem ts = counterSystem(9);
    ExploreLimits lim = limitsWith(GetParam());
    lim.maxMemoryBytes = 1;
    const ExploreResult r = run(ts, lim);
    expectNoSpuriousViolation(r);
}

TEST_P(ExploreLimitsBoundary, ZeroMemoryBoundMeansUnbounded)
{
    TransitionSystem ts = counterSystem(9);
    ExploreLimits lim = limitsWith(GetParam());
    lim.maxMemoryBytes = 0;
    const ExploreResult r = run(ts, lim);
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_GT(r.memoryBytes, 0u);
}

/** A model with a REAL reachable violation, bounded so tightly the
 *  explorer stops before reaching it: the answer must be
 *  LimitExceeded with empty violation fields, never a half-baked
 *  counterexample. */
TEST_P(ExploreLimitsBoundary, LimitBeforeViolationReportsNoViolation)
{
    const Mutant *m = findMutant("dir_grants_E_with_sharers");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    TransitionSystem ts = m->build(shape);

    ExploreLimits lim = limitsWith(GetParam());
    const ExploreResult full = run(ts, lim);
    ASSERT_EQ(full.status, VerifStatus::InvariantViolated);

    // The initial state is clean, so a one-state budget always stops
    // before any violation can be discovered.
    lim.maxStates = 1;
    const ExploreResult r = run(ts, lim);
    expectNoSpuriousViolation(r);
}

TEST_P(ExploreLimitsBoundary, ViolationBeatsSimultaneousLimit)
{
    // Budget exactly at the violation frontier: whichever fires, the
    // status must be decisive — either a genuine counterexample or a
    // clean LimitExceeded — never a mix.
    const Mutant *m = findMutant("leaf_silent_upgrade");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    TransitionSystem ts = m->build(shape);
    for (std::uint64_t cap = 2; cap <= 6; ++cap) {
        ExploreLimits lim = limitsWith(GetParam());
        lim.maxStates = cap;
        const ExploreResult r = run(ts, lim);
        if (r.status == VerifStatus::InvariantViolated) {
            EXPECT_FALSE(r.violatedInvariant.empty());
            EXPECT_FALSE(r.trace.empty());
        } else {
            expectNoSpuriousViolation(r);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SequentialAndParallelAllTiers, ExploreLimitsBoundary,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(StoreTier::Plain,
                                         StoreTier::Delta,
                                         StoreTier::Compact)),
    [](const auto &info) {
        return "threads" + std::to_string(std::get<0>(info.param)) +
               "_" + storeTierName(std::get<1>(info.param));
    });
