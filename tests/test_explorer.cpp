/**
 * @file
 * Unit tests for the model-checker engine itself: reachability,
 * invariant violation with trace reconstruction, deadlock detection,
 * bounds, canonicalization-based symmetry reduction, and the
 * parametric view-abstraction machinery on toy systems.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "verif/explorer.hpp"
#include "verif/parametric.hpp"

using namespace neo;

namespace
{

/** A counter that steps 0..max with a reset rule. */
TransitionSystem
counterSystem(std::uint8_t max)
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    ts.addRule(
        "inc", ActionKind::Internal,
        [x, max](const VState &s) { return s[x] < max; },
        [x](VState &s) { ++s[x]; });
    ts.addRule(
        "reset", ActionKind::Internal,
        [x, max](const VState &s) { return s[x] == max; },
        [x](VState &s) { s[x] = 0; });
    return ts;
}

TEST(Explorer, ExactReachableCount)
{
    TransitionSystem ts = counterSystem(9);
    const auto r = explore(ts, ExploreLimits{1000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_EQ(r.statesExplored, 10u);
}

TEST(Explorer, InvariantViolationWithShortestTrace)
{
    TransitionSystem ts = counterSystem(9);
    ts.addInvariant("below7",
                    [](const VState &s) { return s[0] < 7; });
    const auto r = explore(ts, ExploreLimits{1000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(r.violatedInvariant, "below7");
    // BFS finds the shortest counterexample: seven "inc" steps.
    EXPECT_EQ(r.trace.size(), 7u);
    EXPECT_TRUE(std::all_of(r.trace.begin(), r.trace.end(),
                            [](const std::string &s) {
                                return s == "inc";
                            }));
}

TEST(Explorer, DeadlockDetection)
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    ts.addRule(
        "step", ActionKind::Internal,
        [x](const VState &s) { return s[x] < 3; },
        [x](VState &s) { ++s[x]; });
    // No rule from x==3: a deadlock when detection is on.
    auto r = explore(ts, ExploreLimits{1000, 10.0}, true);
    EXPECT_EQ(r.status, VerifStatus::Deadlock);
    r = explore(ts, ExploreLimits{1000, 10.0}, false);
    EXPECT_EQ(r.status, VerifStatus::Verified);
}

TEST(Explorer, StateBoundReported)
{
    TransitionSystem ts = counterSystem(200);
    const auto r = explore(ts, ExploreLimits{50, 10.0});
    EXPECT_EQ(r.status, VerifStatus::LimitExceeded);
    EXPECT_GE(r.statesExplored, 50u);
}

TEST(Explorer, MemoryEstimateCountsTraceStructures)
{
    // Regression: the estimate must include the predecessor arrays
    // kept for counterexamples — at the fixpoint (empty frontier) the
    // keep_trace run costs exactly one (parent id, rule) entry in the
    // flat link arrays per state more than the traceless run.
    TransitionSystem ts = counterSystem(99);
    const auto with_trace =
        explore(ts, ExploreLimits{1000, 10.0}, false, true);
    const auto without_trace =
        explore(ts, ExploreLimits{1000, 10.0}, false, false);
    EXPECT_EQ(with_trace.statesExplored, without_trace.statesExplored);
    EXPECT_GT(with_trace.memoryBytes, without_trace.memoryBytes);
    const std::uint64_t per_link = 2 * sizeof(std::uint32_t);
    EXPECT_EQ(with_trace.memoryBytes - without_trace.memoryBytes,
              with_trace.statesExplored * per_link);
}

TEST(Explorer, MemoryBoundReported)
{
    TransitionSystem ts = counterSystem(200);
    ExploreLimits lim{100000, 10.0};
    lim.maxMemoryBytes = 2000; // a couple dozen states' worth
    const auto r = explore(ts, lim);
    EXPECT_EQ(r.status, VerifStatus::LimitExceeded);
    EXPECT_LT(r.statesExplored, 201u);
    // Unbounded (the default 0) must not trip.
    const auto ok = explore(ts, ExploreLimits{1000, 10.0});
    EXPECT_EQ(ok.status, VerifStatus::Verified);
}

TEST(Explorer, CanonicalizationMergesSymmetricStates)
{
    // Two independent bits; with sorting canonicalization the states
    // (0,1) and (1,0) merge: 3 canonical states instead of 4.
    auto build = [](bool canon) {
        TransitionSystem ts;
        const auto a = ts.addVar("a", 0);
        const auto b = ts.addVar("b", 0);
        ts.addRule(
            "setA", ActionKind::Internal,
            [a](const VState &s) { return s[a] == 0; },
            [a](VState &s) { s[a] = 1; });
        ts.addRule(
            "setB", ActionKind::Internal,
            [b](const VState &s) { return s[b] == 0; },
            [b](VState &s) { s[b] = 1; });
        if (canon) {
            ts.setCanonicalizer([](VState &s) {
                if (s[0] > s[1])
                    std::swap(s[0], s[1]);
            });
        }
        return ts;
    };
    const auto plain =
        explore(build(false), ExploreLimits{100, 10.0});
    const auto reduced =
        explore(build(true), ExploreLimits{100, 10.0});
    EXPECT_EQ(plain.statesExplored, 4u);
    EXPECT_EQ(reduced.statesExplored, 3u);
}

TEST(Explorer, OnStateVisitsEveryState)
{
    TransitionSystem ts = counterSystem(5);
    unsigned visits = 0;
    explore(ts, ExploreLimits{100, 10.0}, false, true,
            [&](const VState &) { ++visits; });
    EXPECT_EQ(visits, 6u);
}

/** Parametric toy: N clients, at most one in the critical section. */
ModelFactory
mutexFactory(bool buggy)
{
    return [buggy](std::size_t n, ModelShape &shape) {
        TransitionSystem ts;
        const auto lock = ts.addVar("lock", 0);
        shape.sharedVars = 1;
        shape.numLeaves = n;
        shape.leafBlockSize = 1;
        std::vector<std::size_t> in(n);
        for (std::size_t i = 0; i < n; ++i)
            in[i] = ts.addVar("in" + std::to_string(i), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto me = in[i];
            ts.addRule(
                "enter" + std::to_string(i), ActionKind::Internal,
                [lock, buggy](const VState &s) {
                    return buggy || s[lock] == 0;
                },
                [lock, me](VState &s) {
                    s[lock] = 1;
                    s[me] = 1;
                });
            ts.addRule(
                "leave" + std::to_string(i), ActionKind::Internal,
                [me](const VState &s) { return s[me] == 1; },
                [lock, me](VState &s) {
                    s[lock] = 0;
                    s[me] = 0;
                });
        }
        ts.addInvariant("mutex", [in, n](const VState &s) {
            unsigned inside = 0;
            for (std::size_t i = 0; i < n; ++i)
                inside += s[in[i]];
            return inside <= 1;
        });
        ts.setCanonicalizer([n](VState &s) {
            std::sort(s.begin() + 1, s.begin() + 1 + n);
        });
        return ts;
    };
}

TEST(Parametric, ToyMutexConverges)
{
    const auto r = verifyParametric(mutexFactory(false), 1, 6,
                                    ExploreLimits{10000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_TRUE(r.converged) << r.detail;
    EXPECT_LE(r.cutoff, 3u);
}

TEST(Parametric, ToyMutexBugFoundAtSmallestInstance)
{
    const auto r = verifyParametric(mutexFactory(true), 1, 6,
                                    ExploreLimits{10000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_FALSE(r.converged);
    // The two-client instance already exposes it.
    ASSERT_GE(r.perInstance.size(), 2u);
    EXPECT_EQ(r.perInstance.back().status,
              VerifStatus::InvariantViolated);
}

TEST(Parametric, ViewSetSizesAreBoundedAcrossN)
{
    const auto r = verifyParametric(mutexFactory(false), 1, 6,
                                    ExploreLimits{10000, 10.0});
    ASSERT_GE(r.abstractSetSizes.size(), 2u);
    // Convergence means the final two view-set sizes are equal.
    const auto k = r.abstractSetSizes.size();
    EXPECT_EQ(r.abstractSetSizes[k - 1], r.abstractSetSizes[k - 2]);
}

} // namespace
