/**
 * @file
 * Unit tests for the model-checker engine itself: reachability,
 * invariant violation with trace reconstruction, deadlock detection,
 * bounds, canonicalization-based symmetry reduction, and the
 * parametric view-abstraction machinery on toy systems.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "verif/explorer.hpp"
#include "verif/models/german.hpp"
#include "verif/models/mutants.hpp"
#include "verif/parametric.hpp"

using namespace neo;

namespace
{

/** A counter that steps 0..max with a reset rule. */
TransitionSystem
counterSystem(std::uint8_t max)
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    ts.addRule(
        "inc", ActionKind::Internal,
        [x, max](const VState &s) { return s[x] < max; },
        [x](VState &s) { ++s[x]; });
    ts.addRule(
        "reset", ActionKind::Internal,
        [x, max](const VState &s) { return s[x] == max; },
        [x](VState &s) { s[x] = 0; });
    return ts;
}

TEST(Explorer, ExactReachableCount)
{
    TransitionSystem ts = counterSystem(9);
    const auto r = explore(ts, ExploreLimits{1000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_EQ(r.statesExplored, 10u);
}

TEST(Explorer, InvariantViolationWithShortestTrace)
{
    TransitionSystem ts = counterSystem(9);
    ts.addInvariant("below7",
                    [](const VState &s) { return s[0] < 7; });
    const auto r = explore(ts, ExploreLimits{1000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(r.violatedInvariant, "below7");
    // BFS finds the shortest counterexample: seven "inc" steps.
    EXPECT_EQ(r.trace.size(), 7u);
    EXPECT_TRUE(std::all_of(r.trace.begin(), r.trace.end(),
                            [](const std::string &s) {
                                return s == "inc";
                            }));
}

TEST(Explorer, DeadlockDetection)
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    ts.addRule(
        "step", ActionKind::Internal,
        [x](const VState &s) { return s[x] < 3; },
        [x](VState &s) { ++s[x]; });
    // No rule from x==3: a deadlock when detection is on.
    auto r = explore(ts, ExploreLimits{1000, 10.0}, true);
    EXPECT_EQ(r.status, VerifStatus::Deadlock);
    r = explore(ts, ExploreLimits{1000, 10.0}, false);
    EXPECT_EQ(r.status, VerifStatus::Verified);
}

TEST(Explorer, StateBoundReported)
{
    TransitionSystem ts = counterSystem(200);
    const auto r = explore(ts, ExploreLimits{50, 10.0});
    EXPECT_EQ(r.status, VerifStatus::LimitExceeded);
    EXPECT_GE(r.statesExplored, 50u);
}

TEST(Explorer, MemoryEstimateCountsTraceStructures)
{
    // Regression: the estimate must include the predecessor arrays
    // kept for counterexamples — at the fixpoint (empty frontier) the
    // keep_trace run costs exactly one (parent id, rule) entry in the
    // flat link arrays per state more than the traceless run.
    TransitionSystem ts = counterSystem(99);
    const auto with_trace =
        explore(ts, ExploreLimits{1000, 10.0}, false, true);
    const auto without_trace =
        explore(ts, ExploreLimits{1000, 10.0}, false, false);
    EXPECT_EQ(with_trace.statesExplored, without_trace.statesExplored);
    EXPECT_GT(with_trace.memoryBytes, without_trace.memoryBytes);
    const std::uint64_t per_link = 2 * sizeof(std::uint32_t);
    EXPECT_EQ(with_trace.memoryBytes - without_trace.memoryBytes,
              with_trace.statesExplored * per_link);
}

TEST(Explorer, MemoryBoundReported)
{
    TransitionSystem ts = counterSystem(200);
    ExploreLimits lim{100000, 10.0};
    lim.maxMemoryBytes = 2000; // a couple dozen states' worth
    const auto r = explore(ts, lim);
    EXPECT_EQ(r.status, VerifStatus::LimitExceeded);
    EXPECT_LT(r.statesExplored, 201u);
    // Unbounded (the default 0) must not trip.
    const auto ok = explore(ts, ExploreLimits{1000, 10.0});
    EXPECT_EQ(ok.status, VerifStatus::Verified);
}

TEST(Explorer, CanonicalizationMergesSymmetricStates)
{
    // Two independent bits; with sorting canonicalization the states
    // (0,1) and (1,0) merge: 3 canonical states instead of 4.
    auto build = [](bool canon) {
        TransitionSystem ts;
        const auto a = ts.addVar("a", 0);
        const auto b = ts.addVar("b", 0);
        ts.addRule(
            "setA", ActionKind::Internal,
            [a](const VState &s) { return s[a] == 0; },
            [a](VState &s) { s[a] = 1; });
        ts.addRule(
            "setB", ActionKind::Internal,
            [b](const VState &s) { return s[b] == 0; },
            [b](VState &s) { s[b] = 1; });
        if (canon) {
            ts.setCanonicalizer([](VState &s) {
                if (s[0] > s[1])
                    std::swap(s[0], s[1]);
            });
        }
        return ts;
    };
    const auto plain =
        explore(build(false), ExploreLimits{100, 10.0});
    const auto reduced =
        explore(build(true), ExploreLimits{100, 10.0});
    EXPECT_EQ(plain.statesExplored, 4u);
    EXPECT_EQ(reduced.statesExplored, 3u);
}

TEST(Explorer, OnStateVisitsEveryState)
{
    TransitionSystem ts = counterSystem(5);
    unsigned visits = 0;
    explore(ts, ExploreLimits{100, 10.0}, false, true,
            [&](const VState &) { ++visits; });
    EXPECT_EQ(visits, 6u);
}

/** Parametric toy: N clients, at most one in the critical section. */
ModelFactory
mutexFactory(bool buggy)
{
    return [buggy](std::size_t n, ModelShape &shape) {
        TransitionSystem ts;
        const auto lock = ts.addVar("lock", 0);
        shape.sharedVars = 1;
        shape.numLeaves = n;
        shape.leafBlockSize = 1;
        std::vector<std::size_t> in(n);
        for (std::size_t i = 0; i < n; ++i)
            in[i] = ts.addVar("in" + std::to_string(i), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto me = in[i];
            ts.addRule(
                "enter" + std::to_string(i), ActionKind::Internal,
                [lock, buggy](const VState &s) {
                    return buggy || s[lock] == 0;
                },
                [lock, me](VState &s) {
                    s[lock] = 1;
                    s[me] = 1;
                });
            ts.addRule(
                "leave" + std::to_string(i), ActionKind::Internal,
                [me](const VState &s) { return s[me] == 1; },
                [lock, me](VState &s) {
                    s[lock] = 0;
                    s[me] = 0;
                });
        }
        ts.addInvariant("mutex", [in, n](const VState &s) {
            unsigned inside = 0;
            for (std::size_t i = 0; i < n; ++i)
                inside += s[in[i]];
            return inside <= 1;
        });
        ts.setCanonicalizer([n](VState &s) {
            std::sort(s.begin() + 1, s.begin() + 1 + n);
        });
        return ts;
    };
}

TEST(Parametric, ToyMutexConverges)
{
    const auto r = verifyParametric(mutexFactory(false), 1, 6,
                                    ExploreLimits{10000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_TRUE(r.converged) << r.detail;
    EXPECT_LE(r.cutoff, 3u);
}

TEST(Parametric, ToyMutexBugFoundAtSmallestInstance)
{
    const auto r = verifyParametric(mutexFactory(true), 1, 6,
                                    ExploreLimits{10000, 10.0});
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_FALSE(r.converged);
    // The two-client instance already exposes it.
    ASSERT_GE(r.perInstance.size(), 2u);
    EXPECT_EQ(r.perInstance.back().status,
              VerifStatus::InvariantViolated);
}

TEST(Parametric, ViewSetSizesAreBoundedAcrossN)
{
    const auto r = verifyParametric(mutexFactory(false), 1, 6,
                                    ExploreLimits{10000, 10.0});
    ASSERT_GE(r.abstractSetSizes.size(), 2u);
    // Convergence means the final two view-set sizes are equal.
    const auto k = r.abstractSetSizes.size();
    EXPECT_EQ(r.abstractSetSizes[k - 1], r.abstractSetSizes[k - 2]);
}

// ---------------------------------------------------------------------
// Golden fixpoint-count regression fixtures.
//
// One row per bundled model, german N=3..5 and every corpus mutant,
// pinning the EXACT sequential-BFS state / transition / rule-fire /
// invariant-check counts (plus an FNV-1a digest of the full per-rule
// fire vector, so a shifted distribution fails even when the total
// matches). These were captured from the pre-batching engine and must
// never drift: any frontier, batching, interning or rule-compilation
// change that alters a single count is a semantic regression, not a
// perf tweak. Regenerate only for deliberate MODEL changes.
// ---------------------------------------------------------------------

struct GoldenRow
{
    const char *model;
    VerifStatus status;
    std::uint64_t states;
    std::uint64_t transitions;
    std::uint64_t firesSum;
    std::uint64_t firesFnv;
    const char *violatedInvariant;
    std::uint64_t traceLen;
    std::uint64_t invariantChecks;
};

constexpr GoldenRow kGoldenRows[] = {
    {"german_n3", VerifStatus::Verified, 5107u, 20497u, 20497u, 0x200acc64d40cd6a1ull, "", 0u, 5107u},
    {"german_n4", VerifStatus::Verified, 28499u, 153376u, 153376u, 0x7e220c86a6cb462dull, "", 0u, 28499u},
    {"german_n5", VerifStatus::Verified, 134331u, 903815u, 903815u, 0x7929d224a789ef5dull, "", 0u, 134331u},
    {"closed_msi_n2", VerifStatus::Verified, 66u, 123u, 123u, 0x6ca40f965b0b2234ull, "", 0u, 132u},
    {"closed_msi_incl_n2", VerifStatus::Verified, 432u, 988u, 988u, 0xd7b0ea0477ec6c75ull, "", 0u, 864u},
    {"closed_neomesi_n3", VerifStatus::Verified, 4735u, 14433u, 14433u, 0x612fb476879e58f9ull, "", 0u, 9470u},
    {"closed_moesi_n3", VerifStatus::Verified, 10074u, 32030u, 32030u, 0x34e740df6780ec63ull, "", 0u, 20148u},
    {"mutant:dir_forgets_sharer_on_read", VerifStatus::InvariantViolated, 64u, 109u, 109u, 0xafdea3cddaadc2e6ull, "DirTracksHolders", 7u, 128u},
    {"mutant:dir_forgets_sharers_on_evict_ack", VerifStatus::InvariantViolated, 156u, 304u, 304u, 0x71a912d1fcb701cfull, "DirTracksHolders", 10u, 312u},
    {"mutant:dir_nonblocking_read", VerifStatus::InvariantViolated, 126u, 222u, 222u, 0x12ec5b5c4c245e25ull, "NeoSafety_leafCompat", 8u, 126u},
    {"mutant:dir_nonblocking_write", VerifStatus::InvariantViolated, 1445u, 2881u, 2881u, 0xc4b5a22b597d34c6ull, "NeoSafety_leafCompat", 16u, 1445u},
    {"mutant:owner_supplies_without_transfer", VerifStatus::InvariantViolated, 72u, 122u, 122u, 0x06e564bef1d6c707ull, "DirTracksHolders", 7u, 144u},
    {"mutant:sharer_ignores_inv", VerifStatus::InvariantViolated, 42u, 69u, 69u, 0xacac523d9b339fe2ull, "DirTracksHolders", 7u, 84u},
    {"mutant:dir_grants_E_with_sharers", VerifStatus::InvariantViolated, 482u, 971u, 971u, 0x7388522227e0a98aull, "NeoSafety_leafCompat", 15u, 963u},
    {"mutant:dir_skips_invalidation", VerifStatus::InvariantViolated, 52u, 83u, 83u, 0x19542ee596cb690cull, "NeoSafety_leafCompat", 8u, 103u},
    {"mutant:dir_early_owner_fwd", VerifStatus::InvariantViolated, 894u, 2050u, 2050u, 0x17b42f48c0834db3ull, "NeoSafety_leafCompat", 13u, 1787u},
    {"mutant:leaf_silent_upgrade", VerifStatus::InvariantViolated, 58u, 97u, 97u, 0x0e06e48c94a3c608ull, "NeoSafety_leafCompat", 8u, 115u},
    {"mutant:german_grant_E_with_sharers", VerifStatus::InvariantViolated, 248u, 450u, 450u, 0xac9a94c188f70fdfull, "CtrlProp", 8u, 248u},
};

/** FNV-1a over the per-rule fire counts, 8 LE bytes per count. */
std::uint64_t
firesDigest(const std::vector<std::uint64_t> &fires)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t x : fires) {
        for (int b = 0; b < 8; ++b) {
            h ^= (x >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

/** Resolve a golden-row model name to a built system. */
TransitionSystem
buildGoldenModel(const std::string &name)
{
    ModelShape shape;
    if (name.rfind("german_n", 0) == 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::stoul(name.substr(std::string("german_n").size())));
        return verif::buildGermanModel(n, shape);
    }
    if (name.rfind("mutant:", 0) == 0) {
        const auto *m = verif::findMutant(
            name.substr(std::string("mutant:").size()));
        if (m == nullptr)
            ADD_FAILURE() << "unknown mutant in golden table: "
                          << name;
        return m->build(shape);
    }
    for (const verif::BundledModel &m : verif::bundledModels()) {
        if (m.name == name)
            return m.build(shape);
    }
    ADD_FAILURE() << "unknown model in golden table: " << name;
    return TransitionSystem{};
}

class GoldenCounts : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenCounts, SequentialBfsMatchesPinnedCounts)
{
    const GoldenRow &row = GetParam();
    const TransitionSystem ts = buildGoldenModel(row.model);
    const ExploreResult r =
        explore(ts, ExploreLimits{20'000'000, 300.0}, false, true);

    EXPECT_EQ(r.status, row.status) << row.model;
    EXPECT_EQ(r.statesExplored, row.states) << row.model;
    EXPECT_EQ(r.transitionsFired, row.transitions) << row.model;
    std::uint64_t firesSum = 0;
    for (const std::uint64_t f : r.ruleFires)
        firesSum += f;
    EXPECT_EQ(firesSum, row.firesSum) << row.model;
    EXPECT_EQ(firesDigest(r.ruleFires), row.firesFnv) << row.model;
    EXPECT_EQ(r.violatedInvariant, row.violatedInvariant)
        << row.model;
    EXPECT_EQ(r.trace.size(), row.traceLen) << row.model;
    EXPECT_EQ(r.invariantChecks, row.invariantChecks) << row.model;
    if (row.status == VerifStatus::Verified) {
        // A verified fixpoint checks every invariant on every state.
        EXPECT_EQ(r.invariantChecks,
                  r.statesExplored * ts.invariants().size())
            << row.model;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, GoldenCounts, ::testing::ValuesIn(kGoldenRows),
    [](const ::testing::TestParamInfo<GoldenRow> &info) {
        std::string n = info.param.model;
        for (char &c : n) {
            if (c == ':' || c == '.')
                c = '_';
        }
        return n;
    });

} // namespace
