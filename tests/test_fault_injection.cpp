/**
 * @file
 * Fault-injection harness tests: schedule determinism, duplicate
 * suppression, timeout/backoff recovery, blackout detection by the
 * no-progress watchdog, and the idle-neutrality guarantee (arming the
 * machinery without faults must not change a run at all).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/sim_runner.hpp"
#include "sim/fault.hpp"
#include "sim/logging.hpp"
#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

WorkloadParams
smallSharedWorkload()
{
    WorkloadParams wl;
    wl.privateBlocksPerCore = 16;
    wl.sharedBlocks = 8;
    wl.sharedFraction = 0.4;
    return wl;
}

/** Fields that must agree for two runs to count as the same run. */
void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.networkMessages, b.networkMessages);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.staleDrops, b.staleDrops);
    EXPECT_EQ(a.dupDrops, b.dupDrops);
    EXPECT_EQ(a.redrives, b.redrives);
    EXPECT_EQ(a.faultDrops, b.faultDrops);
    EXPECT_EQ(a.faultDups, b.faultDups);
    EXPECT_EQ(a.faultDelays, b.faultDelays);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.violations.size(), b.violations.size());
}

} // namespace

TEST(DedupWindow, FiltersRepeatsWithinCapacity)
{
    DedupWindow w(4);
    EXPECT_FALSE(w.seen(1));
    EXPECT_FALSE(w.seen(2));
    EXPECT_TRUE(w.seen(1));
    EXPECT_TRUE(w.seen(2));
    // Push 1 out of the 4-entry window; it then reads as new again.
    EXPECT_FALSE(w.seen(3));
    EXPECT_FALSE(w.seen(4));
    EXPECT_FALSE(w.seen(5));
    EXPECT_FALSE(w.seen(1));
    EXPECT_EQ(w.size(), 4u);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultParams p;
    p.dropProb = 0.1;
    p.dupProb = 0.1;
    p.delayProb = 0.1;
    p.seed = 77;
    FaultInjector a(p), b(p);
    for (std::uint64_t id = 1; id <= 2000; ++id) {
        a.decide(id, id * 3, 1, 2);
        b.decide(id, id * 3, 1, 2);
    }
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    EXPECT_GT(a.schedule().size(), 0u);
    for (std::size_t i = 0; i < a.schedule().size(); ++i)
        EXPECT_TRUE(a.schedule()[i] == b.schedule()[i]);
    std::ostringstream sa, sb;
    a.writeSchedule(sa);
    b.writeSchedule(sb);
    EXPECT_EQ(sa.str(), sb.str());

    FaultParams q = p;
    q.seed = 78;
    FaultInjector c(q);
    for (std::uint64_t id = 1; id <= 2000; ++id)
        c.decide(id, id * 3, 1, 2);
    EXPECT_NE(sa.str(), [&] {
        std::ostringstream sc;
        c.writeSchedule(sc);
        return sc.str();
    }());
}

TEST(FaultInjector, BlackoutWindowHoldsAndReleases)
{
    FaultParams p;
    p.blackouts.push_back(LinkBlackout{3, true, 100, 200});
    FaultInjector fi(p);
    EXPECT_EQ(fi.linkRelease(3, true, 50), 50u);
    EXPECT_EQ(fi.linkRelease(3, true, 100), 200u);
    EXPECT_EQ(fi.linkRelease(3, true, 199), 200u);
    EXPECT_EQ(fi.linkRelease(3, true, 200), 200u);
    EXPECT_EQ(fi.linkRelease(3, false, 150), 150u); // other direction
    EXPECT_EQ(fi.linkRelease(4, true, 150), 150u);  // other link

    FaultParams perm;
    perm.blackouts.push_back(LinkBlackout{3, true, 100, maxTick});
    FaultInjector fp(perm);
    EXPECT_EQ(fp.linkRelease(3, true, 100), maxTick);
}

TEST(FaultCampaign, SameFaultSeedSameRunResult)
{
    setQuiet(true);
    HierarchySpec spec = tinyTree(ProtocolVariant::NeoMESI, 2, 2);
    RunConfig cfg;
    cfg.opsPerCore = 400;
    cfg.faults.dropProb = 0.02;
    cfg.faults.dupProb = 0.01;
    cfg.faults.delayProb = 0.01;
    cfg.faults.seed = 9;
    const WorkloadParams wl = smallSharedWorkload();
    const RunResult a = runOnce(spec, wl, cfg);
    const RunResult b = runOnce(spec, wl, cfg);
    expectSameRun(a, b);
    EXPECT_GT(a.faultDrops, 0u);

    RunConfig other = cfg;
    other.faults.seed = 10;
    const RunResult c = runOnce(spec, wl, other);
    EXPECT_NE(a.runtime, c.runtime);
}

TEST(FaultCampaign, BenignFaultsCleanOnTable1Hierarchies)
{
    setQuiet(true);
    const WorkloadParams wl = parsecProfile("canneal");
    for (const char *org : {"skewed", "2perL2", "8perL2"}) {
        HierarchySpec spec =
            organizationByName(org, ProtocolVariant::NeoMESI);
        spec.network.maxJitter = 3; // reordering on top of the faults
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            RunConfig cfg;
            cfg.opsPerCore = 60;
            cfg.faults.dupProb = 0.01;
            cfg.faults.delayProb = 0.01;
            cfg.faults.seed = seed;
            const RunResult r = runOnce(spec, wl, cfg);
            EXPECT_FALSE(r.deadlocked)
                << org << " fault seed " << seed;
            EXPECT_TRUE(r.violations.empty())
                << org << " fault seed " << seed << ": "
                << r.violations.front();
        }
    }
}

TEST(FaultCampaign, DropsRecoverViaTimeoutBackoff)
{
    setQuiet(true);
    HierarchySpec spec =
        organizationByName("2perL2", ProtocolVariant::TreeMSI);
    RunConfig cfg;
    cfg.opsPerCore = 150;
    cfg.faults.dropProb = 0.02;
    cfg.faults.dupProb = 0.01;
    const RunResult r = runOnce(spec, parsecProfile("canneal"), cfg);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_GT(r.faultDrops, 0u);
    EXPECT_GT(r.retries, 0u);       // losses actually re-issued
    EXPECT_GT(r.recoveredTxns, 0u); // and measured
    EXPECT_GT(r.recoveryLatencyMean, 0.0);
    EXPECT_EQ(exitCodeFor(r), 0);
}

TEST(FaultCampaign, PermanentBlackoutCaughtByWatchdog)
{
    setQuiet(true);
    HierarchySpec spec =
        organizationByName("2perL2", ProtocolVariant::NeoMESI);
    RunConfig cfg;
    cfg.opsPerCore = 100;
    // Sever the first L2's upward link from the start.
    cfg.faults.blackouts.push_back(LinkBlackout{1, true, 0, maxTick});
    cfg.recovery.timeout = 5000;
    cfg.recovery.maxRetries = 3;
    cfg.watchdogInterval = 50000;
    const RunResult r = runOnce(spec, parsecProfile("canneal"), cfg);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_TRUE(r.watchdogFired);
    EXPECT_EQ(exitCodeFor(r), 4);
    // Detection happens within the strike budget of sampling windows
    // after the system stalls, long before a natural run would end.
    EXPECT_GT(r.watchdogTick, 0u);
    EXPECT_LE(r.watchdogTick,
              (cfg.watchdogStrikes + 2) * cfg.watchdogInterval +
                  2'000'000u);
    EXPECT_FALSE(r.postmortem.empty());
    EXPECT_NE(r.postmortem.find("parked"), std::string::npos);
    EXPECT_GT(r.faultHolds, 0u);
}

TEST(FaultCampaign, PermanentBlackoutWithoutWatchdogDeadlocks)
{
    setQuiet(true);
    HierarchySpec spec =
        organizationByName("2perL2", ProtocolVariant::NeoMESI);
    RunConfig cfg;
    cfg.opsPerCore = 100;
    cfg.faults.blackouts.push_back(LinkBlackout{1, true, 0, maxTick});
    cfg.recovery.timeout = 5000;
    cfg.recovery.maxRetries = 3;
    const RunResult r = runOnce(spec, parsecProfile("canneal"), cfg);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_FALSE(r.watchdogFired);
    EXPECT_EQ(exitCodeFor(r), 3);
    EXPECT_FALSE(r.postmortem.empty());
}

TEST(FaultCampaign, FiniteBlackoutRecovers)
{
    setQuiet(true);
    HierarchySpec spec =
        organizationByName("2perL2", ProtocolVariant::NeoMESI);
    RunConfig cfg;
    cfg.opsPerCore = 100;
    cfg.faults.blackouts.push_back(LinkBlackout{1, true, 0, 30000});
    const RunResult r = runOnce(spec, parsecProfile("canneal"), cfg);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_GT(r.faultHolds, 0u); // traffic was actually held
    EXPECT_EQ(exitCodeFor(r), 0);
}

TEST(FaultCampaign, IdleMachineryIsNeutral)
{
    setQuiet(true);
    HierarchySpec spec = tinyTree(ProtocolVariant::NeoMESI, 2, 2);
    const WorkloadParams wl = smallSharedWorkload();
    RunConfig plain;
    plain.opsPerCore = 400;
    const RunResult a = runOnce(spec, wl, plain);

    // Arm recovery timers and the watchdog with no faults: the run
    // must be indistinguishable (no spurious retries, same timing).
    RunConfig armed = plain;
    armed.recovery.timeout = 20000;
    armed.watchdogInterval = 100000;
    const RunResult b = runOnce(spec, wl, armed);
    expectSameRun(a, b);
    EXPECT_EQ(b.retries, 0u);
    EXPECT_EQ(b.redrives, 0u);
    EXPECT_FALSE(b.watchdogFired);
}

TEST(ExitCodes, DistinguishOutcomes)
{
    RunResult r;
    EXPECT_EQ(exitCodeFor(r), 0);
    r.deadlocked = true;
    EXPECT_EQ(exitCodeFor(r), 3);
    r.watchdogFired = true;
    EXPECT_EQ(exitCodeFor(r), 4);
    r.violations.push_back("boom");
    EXPECT_EQ(exitCodeFor(r), 1); // violations dominate
}
