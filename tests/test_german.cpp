/**
 * @file
 * Tests for the German protocol model — the toy the paper contrasts
 * NeoMESI against (§2: NeoGerman's simplicity "belies the actual
 * verification scalability").
 */

#include <gtest/gtest.h>

#include "verif/explorer.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

class German : public ::testing::TestWithParam<int>
{
};

TEST_P(German, ControlPropertyHolds)
{
    ModelShape shape;
    TransitionSystem ts =
        buildGermanModel(static_cast<std::size_t>(GetParam()), shape);
    const ExploreResult r =
        explore(ts, ExploreLimits{5'000'000, 120.0});
    EXPECT_EQ(r.status, VerifStatus::Verified)
        << r.violatedInvariant << "\n"
        << r.badState;
}

INSTANTIATE_TEST_SUITE_P(Sweep, German, ::testing::Values(1, 2, 3, 4),
                         [](const auto &info) {
                             return "N" + std::to_string(info.param);
                         });

TEST(German, ParametricConvergesAtTinyCutoff)
{
    const ParametricResult r = verifyParametric(
        germanModelFactory(), 1, 6, ExploreLimits{5'000'000, 120.0});
    EXPECT_EQ(r.status, VerifStatus::Verified) << r.detail;
    EXPECT_TRUE(r.converged) << r.detail;
    EXPECT_LE(r.cutoff, 4u);
}

TEST(German, ToyIsOrdersOfMagnitudeSmallerThanNeoMESI)
{
    ModelShape shape;
    const auto german =
        explore(buildGermanModel(4, shape),
                ExploreLimits{5'000'000, 120.0}, false, false);
    const auto neomesi = explore(
        buildOpenModel(4, VerifFeatures::neoMESI(),
                       CompositionMethod::None, shape),
        ExploreLimits{5'000'000, 120.0}, false, false);
    ASSERT_EQ(german.status, VerifStatus::Verified);
    ASSERT_EQ(neomesi.status, VerifStatus::Verified);
    // §2's point: realistic features (transients, forwarding,
    // evictions) multiply the interleavings to be checked.
    EXPECT_GT(neomesi.statesExplored, 5 * german.statesExplored);
}

TEST(German, SeededBugIsCaught)
{
    // Drop the exclusivity check from the E grant: the checker must
    // find the classic two-writers counterexample.
    ModelShape shape;
    TransitionSystem ts = buildGermanModel(2, shape);
    const std::size_t c0_st = shape.sharedVars; // first client's state
    ts.addRule(
        "BUG_grant_E_unconditionally", ActionKind::Internal,
        [c0_st](const VState &s) { return s[c0_st] == 0; /* I */ },
        [c0_st](VState &s) { s[c0_st] = 2; /* E */ });
    const ExploreResult r =
        explore(ts, ExploreLimits{5'000'000, 60.0});
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(r.violatedInvariant, "CtrlProp");
    EXPECT_FALSE(r.trace.empty());
}

} // namespace
