/**
 * @file
 * Tests for the NeoHierarchy structure: recursive sums over Figure-1
 * shaped trees, violation surfacing, and the leaf-replacement scaling
 * operation of §2.3. Also model-coverage checks: no rule of the
 * NeoMESI verification models is dead.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <algorithm>

#include "neo/hierarchy.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"

using namespace neo;

namespace
{

NeoNode
healthySubtree()
{
    // S-directory over two S leaves and an I leaf.
    NeoNode n = NeoNode::internal(Perm::S);
    n.compose(NeoNode::leaf(Perm::S))
        .compose(NeoNode::leaf(Perm::S))
        .compose(NeoNode::leaf(Perm::I));
    return n;
}

TEST(NeoHierarchy, LeafSumIsItsPermission)
{
    EXPECT_EQ(NeoNode::leaf(Perm::M).sum(), Perm::M);
    EXPECT_EQ(NeoNode::leaf(Perm::I).sum(), Perm::I);
}

TEST(NeoHierarchy, HealthyTreeSummarizesToRootPermission)
{
    NeoNode root = NeoNode::internal(Perm::M);
    root.compose(healthySubtree())
        .compose(NeoNode::leaf(Perm::I))
        .compose(healthySubtree());
    EXPECT_EQ(root.sum(), Perm::M);
    EXPECT_EQ(root.size(), 10u);
    EXPECT_EQ(root.depth(), 3u);
}

TEST(NeoHierarchy, DeepViolationSurfacesAtTheTop)
{
    NeoNode deep = NeoNode::internal(Perm::S);
    // Permission principle violated three levels down: an M leaf
    // under an S directory.
    NeoNode mid = NeoNode::internal(Perm::S);
    mid.compose(NeoNode::leaf(Perm::M));
    deep.compose(mid);
    NeoNode root = NeoNode::internal(Perm::M);
    root.compose(deep).compose(NeoNode::leaf(Perm::I));
    EXPECT_EQ(root.sum(), Perm::Bad);
}

TEST(NeoHierarchy, SiblingIncompatibilitySurfaces)
{
    NeoNode root = NeoNode::internal(Perm::M);
    root.compose(NeoNode::leaf(Perm::E))
        .compose(NeoNode::leaf(Perm::S));
    EXPECT_EQ(root.sum(), Perm::Bad);
    NeoNode ok = NeoNode::internal(Perm::M);
    ok.compose(NeoNode::leaf(Perm::E)).compose(NeoNode::leaf(Perm::I));
    EXPECT_EQ(ok.sum(), Perm::M);
}

TEST(NeoHierarchy, ReplaceLeafScalesTheTree)
{
    // §2.3: scale a hierarchy by replacing a leaf with a subhierarchy
    // that summarizes identically.
    NeoNode root = NeoNode::internal(Perm::M);
    root.compose(NeoNode::leaf(Perm::S))
        .compose(NeoNode::leaf(Perm::I));
    ASSERT_EQ(root.sum(), Perm::M);

    // The replacement subtree also sums to S, like the leaf it
    // replaces — the Safe Composition Invariant's premise.
    NeoNode sub = healthySubtree();
    ASSERT_EQ(sub.sum(), Perm::S);
    ASSERT_TRUE(replaceLeaf(root, 0, std::move(sub)));
    EXPECT_EQ(root.sum(), Perm::M);
    EXPECT_EQ(root.depth(), 3u);

    // Replacing past the last leaf fails.
    EXPECT_FALSE(replaceLeaf(root, 99, NeoNode::leaf(Perm::I)));
}

TEST(NeoHierarchy, StrRendersShape)
{
    NeoNode root = NeoNode::internal(Perm::M);
    root.compose(NeoNode::leaf(Perm::S))
        .compose(NeoNode::leaf(Perm::I));
    EXPECT_EQ(root.str(), "M(S,I)");
}

// ---- model rule coverage: dead logic detection ----
//
// Rules are instantiated per leaf index (and per (owner, target)
// pair); symmetry canonicalization renumbers leaves, so individual
// instances can legitimately never fire. Coverage is therefore
// checked per rule FAMILY (name with index suffixes stripped).

std::string
familyOf(const std::string &rule)
{
    std::string f = rule;
    // strip trailing _<digits> and _to_<digits> suffixes
    for (int pass = 0; pass < 2; ++pass) {
        const auto us = f.find_last_of('_');
        if (us == std::string::npos)
            break;
        const std::string tail = f.substr(us + 1);
        if (!tail.empty() &&
            std::all_of(tail.begin(), tail.end(), ::isdigit)) {
            f = f.substr(0, us);
            if (f.size() >= 3 && f.substr(f.size() - 3) == "_to")
                f = f.substr(0, f.size() - 3);
        } else {
            break;
        }
    }
    return f;
}

void
expectFamilyCoverage(const neo::verif::VerifFeatures &features,
                     const std::set<std::string> &allowed_dead)
{
    using namespace neo::verif;
    ModelShape shape;
    TransitionSystem ts = buildClosedModel(3, features, shape);
    const ExploreResult r =
        explore(ts, ExploreLimits{5'000'000, 300.0}, false, false);
    ASSERT_EQ(r.status, VerifStatus::Verified);
    std::map<std::string, std::uint64_t> fires;
    for (std::size_t i = 0; i < ts.rules().size(); ++i)
        fires[familyOf(ts.rules()[i].name)] += r.ruleFires[i];
    for (const auto &[family, count] : fires) {
        if (allowed_dead.count(family))
            continue;
        EXPECT_GT(count, 0u) << "dead rule family: " << family;
    }
}

TEST(ModelCoverage, ClosedNeoMESIFamiliesAllFire)
{
    // d_fwdM_dispatch requires an owner coexisting with sharers,
    // which MESI forbids — it exists for the O-state ladder step.
    expectFamilyCoverage(neo::verif::VerifFeatures::neoMESI(),
                         {"d_fwdM_dispatch"});
}

TEST(ModelCoverage, ClosedMOESIExercisesTheDeferredForward)
{
    // Under MOESI the deferred owner-forward MUST fire somewhere —
    // this is the single-writer race the +O state introduces.
    expectFamilyCoverage(neo::verif::VerifFeatures::withOwned(), {});
}

TEST(ModelCoverage, OpenNeoMESIFamiliesAllFire)
{
    using namespace neo::verif;
    ModelShape shape;
    TransitionSystem ts = buildOpenModel(
        3, VerifFeatures::neoMESI(), CompositionMethod::None, shape);
    const ExploreResult r =
        explore(ts, ExploreLimits{5'000'000, 300.0}, false, false);
    ASSERT_EQ(r.status, VerifStatus::Verified);
    std::map<std::string, std::uint64_t> fires;
    for (std::size_t i = 0; i < ts.rules().size(); ++i)
        fires[familyOf(ts.rules()[i].name)] += r.ruleFires[i];
    const std::set<std::string> allowed_dead = {"d_fwdM_dispatch"};
    for (const auto &[family, count] : fires) {
        if (allowed_dead.count(family))
            continue;
        EXPECT_GT(count, 0u) << "dead rule family: " << family;
    }
}

} // namespace
