/**
 * @file
 * Stress for the jittered-network path (NetworkParams::maxJitter > 0):
 * random per-message skew reorders deliveries on every link, which the
 * protocols must tolerate without any resilience machinery armed. Each
 * configuration must finish, pass the checker, and replay identically
 * for a fixed (run seed, jitter seed) pair.
 */

#include <gtest/gtest.h>

#include "core/sim_runner.hpp"
#include "sim/logging.hpp"
#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

WorkloadParams
contendedWorkload()
{
    WorkloadParams wl;
    wl.privateBlocksPerCore = 16;
    wl.sharedBlocks = 8;
    wl.sharedFraction = 0.5; // heavy sharing: maximal reorder exposure
    return wl;
}

void
runJittered(HierarchySpec spec, Tick jitter, std::uint64_t seed)
{
    setQuiet(true);
    spec.network.maxJitter = jitter;
    spec.network.jitterSeed = seed;
    RunConfig cfg;
    cfg.opsPerCore = 400;
    cfg.seed = seed;
    const WorkloadParams wl = contendedWorkload();
    const RunResult a = runOnce(spec, wl, cfg);
    EXPECT_FALSE(a.deadlocked)
        << spec.name << " jitter=" << jitter << " seed=" << seed;
    ASSERT_TRUE(a.violations.empty())
        << spec.name << " jitter=" << jitter << " seed=" << seed
        << ": " << a.violations.front();
    // Jitter draws come from a dedicated stream, so the whole run is
    // reproducible bit for bit.
    const RunResult b = runOnce(spec, wl, cfg);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.networkMessages, b.networkMessages);
}

} // namespace

TEST(JitterStress, TinyTreesAcrossProtocols)
{
    for (ProtocolVariant v :
         {ProtocolVariant::TreeMSI, ProtocolVariant::NeoMESI}) {
        for (Tick jitter : {Tick{3}, Tick{9}}) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed)
                runJittered(tinyTree(v, 2, 2), jitter, seed);
        }
    }
}

TEST(JitterStress, DeepUnbalancedTree)
{
    for (Tick jitter : {Tick{3}, Tick{9}}) {
        runJittered(deepTree(ProtocolVariant::NeoMESI), jitter, 1);
        runJittered(deepTree(ProtocolVariant::TreeMSI), jitter, 2);
    }
}

TEST(JitterStress, Table1OrganizationNeoMESI)
{
    HierarchySpec spec =
        organizationByName("2perL2", ProtocolVariant::NeoMESI);
    spec.network.maxJitter = 3;
    setQuiet(true);
    RunConfig cfg;
    cfg.opsPerCore = 100;
    const RunResult r = runOnce(spec, parsecProfile("canneal"), cfg);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.violations.empty());
}

TEST(JitterStress, JitterSeedChangesTiming)
{
    setQuiet(true);
    HierarchySpec spec = tinyTree(ProtocolVariant::NeoMESI, 2, 2);
    spec.network.maxJitter = 9;
    RunConfig cfg;
    cfg.opsPerCore = 400;
    const WorkloadParams wl = contendedWorkload();
    spec.network.jitterSeed = 1;
    const RunResult a = runOnce(spec, wl, cfg);
    spec.network.jitterSeed = 2;
    const RunResult b = runOnce(spec, wl, cfg);
    EXPECT_NE(a.runtime, b.runtime);
    EXPECT_TRUE(a.violations.empty());
    EXPECT_TRUE(b.violations.empty());
}
