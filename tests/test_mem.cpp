/**
 * @file
 * Unit tests for the memory substrate: address slicing, the
 * set-associative array's lookup/LRU/victim behavior, DRAM occupancy.
 */

#include <gtest/gtest.h>

#include "mem/address.hpp"
#include "mem/cache_array.hpp"
#include "mem/dram.hpp"

using namespace neo;

namespace
{

TEST(AddressMap, SlicesCorrectly)
{
    AddressMap map(64, 16); // 6 offset bits, 4 set bits
    const Addr a = 0xABCDE4;
    EXPECT_EQ(map.blockAlign(a), 0xABCDC0u);
    EXPECT_EQ(map.setIndex(a), (0xABCDE4u >> 6) & 0xF);
    EXPECT_EQ(map.tag(a), 0xABCDE4u >> 10);
    EXPECT_EQ(map.blockAlign(map.blockAlign(a)), map.blockAlign(a));
}

TEST(AddressMap, Pow2Helpers)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(64), 6u);
}

struct Meta
{
    int v = 0;
};

CacheGeometry
smallGeom()
{
    return CacheGeometry{8 * 64, 2, 64, 1}; // 4 sets x 2 ways
}

TEST(CacheArray, AllocateFindErase)
{
    CacheArray<Meta> c(smallGeom());
    EXPECT_EQ(c.find(0x100), nullptr);
    c.allocate(0x100).v = 7;
    ASSERT_NE(c.find(0x100), nullptr);
    EXPECT_EQ(c.find(0x100)->v, 7);
    EXPECT_EQ(c.occupancy(), 1u);
    c.erase(0x100);
    EXPECT_EQ(c.find(0x100), nullptr);
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheArray, SetConflictsRespectAssociativity)
{
    CacheArray<Meta> c(smallGeom());
    // Three blocks mapping to the same set (stride = sets*block).
    const Addr stride = 4 * 64;
    c.allocate(0x0);
    c.allocate(stride);
    EXPECT_FALSE(c.hasFreeWay(2 * stride));
    // A different set still has room.
    EXPECT_TRUE(c.hasFreeWay(0x40));
}

TEST(CacheArray, VictimIsLruAmongEvictable)
{
    CacheArray<Meta> c(smallGeom());
    const Addr stride = 4 * 64;
    c.allocate(0x0);
    c.allocate(stride);
    // Touch 0x0 so `stride` becomes LRU.
    c.find(0x0);
    auto victim = c.victimFor(
        2 * stride, [](Addr, const Meta &) { return true; });
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, stride);
    // Veto the LRU: the other way must be picked.
    victim = c.victimFor(2 * stride, [&](Addr a, const Meta &) {
        return a != stride;
    });
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 0u);
    // Veto everything: no victim.
    victim = c.victimFor(2 * stride,
                         [](Addr, const Meta &) { return false; });
    EXPECT_FALSE(victim.has_value());
}

TEST(CacheArray, PeekDoesNotTouchLru)
{
    CacheArray<Meta> c(smallGeom());
    const Addr stride = 4 * 64;
    c.allocate(0x0);
    c.allocate(stride);
    // 0x0 is older. peek must not promote it.
    c.peek(0x0);
    auto victim = c.victimFor(
        2 * stride, [](Addr, const Meta &) { return true; });
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 0u);
}

TEST(CacheArray, ForEachVisitsAllValid)
{
    CacheArray<Meta> c(smallGeom());
    c.allocate(0x0).v = 1;
    c.allocate(0x40).v = 2;
    c.allocate(0x80).v = 3;
    int sum = 0;
    unsigned count = 0;
    c.forEach([&](Addr, Meta &m) {
        sum += m.v;
        ++count;
    });
    EXPECT_EQ(count, 3u);
    EXPECT_EQ(sum, 6);
}

TEST(CacheArray, ReconstructedAddressesRoundTrip)
{
    CacheArray<Meta> c(CacheGeometry{64 * 1024, 4, 64, 1});
    const Addr addrs[] = {0x0, 0x12340, 0xFFFC0, 0xABCD00};
    for (Addr a : addrs)
        c.allocate(a);
    unsigned matched = 0;
    c.forEach([&](Addr a, Meta &) {
        for (Addr want : addrs)
            if (a == want)
                ++matched;
    });
    EXPECT_EQ(matched, 4u);
}

TEST(Dram, SerializesBackToBackAccesses)
{
    DramModel dram(1 << 20, 100);
    EXPECT_EQ(dram.access(0), 100u);   // idle: plain latency
    EXPECT_EQ(dram.access(0), 200u);   // queued behind the first
    EXPECT_EQ(dram.access(500), 100u); // idle again by t=500
    EXPECT_EQ(dram.accesses(), 3u);
}

} // namespace
