/**
 * @file
 * Unit + torture suite for the lock-free frontier (mpmc_ring.hpp):
 * FIFO order and wraparound at tiny capacities, full-ring rejection,
 * SpillFrontier's overflow-to-spill fallback (push never fails),
 * quiescent iteration exactness, and TSan-vetted multi-producer/
 * multi-consumer torture loops asserting that a million concurrent
 * push/pop cycles lose and duplicate nothing. Runs under the `queue`
 * ctest label, which CI executes under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "verif/mpmc_ring.hpp"

using namespace neo;

namespace
{

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwoMinimumFour)
{
    EXPECT_EQ(MpmcRing<int>(0).capacity(), 4u);
    EXPECT_EQ(MpmcRing<int>(1).capacity(), 4u);
    EXPECT_EQ(MpmcRing<int>(4).capacity(), 4u);
    EXPECT_EQ(MpmcRing<int>(5).capacity(), 8u);
    EXPECT_EQ(MpmcRing<int>(8192).capacity(), 8192u);
}

TEST(MpmcRing, SingleThreadFifoOrder)
{
    MpmcRing<int> ring(128);
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    int v = -1;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
}

TEST(MpmcRing, FullRingRejectsPushUntilPopped)
{
    MpmcRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    int v = -1;
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ring.tryPush(99));
    EXPECT_FALSE(ring.tryPush(100));
}

TEST(MpmcRing, WrapsAroundTinyCapacityManyLaps)
{
    // 10k elements through a 4-cell ring: every sequence number laps
    // the capacity thousands of times, exercising the seq arithmetic
    // far past the first wrap.
    MpmcRing<std::uint64_t> ring(4);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        if ((i & 1) != 0) { // keep 1-2 elements resident
            std::uint64_t v = 0;
            ASSERT_TRUE(ring.tryPop(v));
            EXPECT_EQ(v, expect++);
            ASSERT_TRUE(ring.tryPop(v));
            EXPECT_EQ(v, expect++);
        }
    }
    std::uint64_t v = 0;
    while (ring.tryPop(v))
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(expect, 10'000u);
}

TEST(MpmcRing, QuiescentIterationSeesExactlyTheLiveElements)
{
    MpmcRing<int> ring(8);
    int v = -1;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    ASSERT_TRUE(ring.tryPop(v)); // live: 1 2 3 4
    std::vector<int> seen;
    ring.forEachQuiescent([&](const int &x) { seen.push_back(x); });
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SpillFrontier, OverflowSpillsInsteadOfFailingAndNothingIsLost)
{
    SpillFrontier<int> q(4); // 4-cell ring
    for (int i = 0; i < 100; ++i)
        q.push(i);
    EXPECT_EQ(q.spillPushes(), 96u);
    EXPECT_EQ(q.spillDepth(), 96u);
    // Ring first (0..3), then the spill deque oldest-first (4..99):
    // global FIFO order happens to be preserved when nothing was
    // popped mid-burst.
    std::vector<int> got;
    int v = -1;
    while (q.pop(v))
        got.push_back(v);
    ASSERT_EQ(got.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(q.spillDepth(), 0u);
    EXPECT_EQ(q.spillPushes(), 96u); // cumulative, not reset by pops
}

TEST(SpillFrontier, ForEachCoversRingAndSpill)
{
    SpillFrontier<int> q(4);
    for (int i = 0; i < 10; ++i)
        q.push(i); // 0..3 in the ring, 4..9 spilled
    std::vector<int> seen;
    q.forEach([&](const int &x) { seen.push_back(x); });
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SpillFrontier, StealIsPopFromTheSameRing)
{
    SpillFrontier<int> q(8);
    q.push(7);
    int v = -1;
    ASSERT_TRUE(q.steal(v)); // same operation as pop
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(q.steal(v));
}

/** Join-and-verify tail shared by the torture tests: merge the
 *  per-consumer logs and assert every payload 0..n-1 arrived exactly
 *  once — nothing lost, nothing duplicated. */
void
verifyExactlyOnce(const std::vector<std::vector<std::uint64_t>> &logs,
                  std::uint64_t n)
{
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    std::uint64_t total = 0;
    for (const auto &log : logs) {
        for (const std::uint64_t v : log) {
            ASSERT_LT(v, n) << "payload out of range";
            ASSERT_EQ(seen[static_cast<std::size_t>(v)], 0)
                << "payload " << v << " popped twice";
            seen[static_cast<std::size_t>(v)] = 1;
            ++total;
        }
    }
    EXPECT_EQ(total, n) << "payloads lost";
}

TEST(MpmcRingTorture, EightThreadsMillionCyclesExactlyOnce)
{
    // 4 producers x 4 consumers through a 1024-cell ring, 1M unique
    // payloads. Producers spin on a full ring (backpressure), so the
    // ring wraps thousands of laps under contention. TSan-clean by
    // construction of the seq handshake; this pins it.
    constexpr std::uint64_t kTotal = 1'000'000;
    constexpr unsigned kProducers = 4;
    constexpr unsigned kConsumers = 4;
    constexpr std::uint64_t kPerProducer = kTotal / kProducers;

    MpmcRing<std::uint64_t> ring(1024);
    std::atomic<std::uint64_t> popped{0};
    std::vector<std::vector<std::uint64_t>> logs(kConsumers);

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p) {
        threads.emplace_back([&ring, p] {
            const std::uint64_t base = p * kPerProducer;
            for (std::uint64_t k = 0; k < kPerProducer; ++k) {
                while (!ring.tryPush(base + k))
                    std::this_thread::yield();
            }
        });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&ring, &popped, &logs, c] {
            auto &log = logs[c];
            log.reserve(kTotal / kConsumers);
            std::uint64_t v = 0;
            while (popped.load(std::memory_order_relaxed) < kTotal) {
                if (ring.tryPop(v)) {
                    log.push_back(v);
                    popped.fetch_add(1, std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    verifyExactlyOnce(logs, kTotal);
}

TEST(SpillFrontierTorture, OverflowingProducersLoseNothing)
{
    // A deliberately tiny ring (16 cells) under 4 producers that
    // never wait: pushes constantly overflow into the spill deque
    // while 4 consumers drain both tiers concurrently.
    constexpr std::uint64_t kTotal = 200'000;
    constexpr unsigned kProducers = 4;
    constexpr unsigned kConsumers = 4;
    constexpr std::uint64_t kPerProducer = kTotal / kProducers;

    SpillFrontier<std::uint64_t> q(16);
    std::atomic<std::uint64_t> popped{0};
    std::vector<std::vector<std::uint64_t>> logs(kConsumers);

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p) {
        threads.emplace_back([&q, p] {
            const std::uint64_t base = p * kPerProducer;
            for (std::uint64_t k = 0; k < kPerProducer; ++k)
                q.push(base + k); // never fails
        });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&q, &popped, &logs, c] {
            auto &log = logs[c];
            std::uint64_t v = 0;
            while (popped.load(std::memory_order_relaxed) < kTotal) {
                if (q.pop(v)) {
                    log.push_back(v);
                    popped.fetch_add(1, std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    verifyExactlyOnce(logs, kTotal);
    EXPECT_GT(q.spillPushes(), 0u)
        << "torture never exercised the spill tier";
    EXPECT_EQ(q.spillDepth(), 0u);
}

} // namespace
