/**
 * @file
 * Unit + property tests for the Neo theory layer: the permission
 * lattice, the sum functions' §2.4 requirements, and execution
 * summaries (§2.3).
 */

#include <gtest/gtest.h>

#include <array>

#include "neo/execution.hpp"
#include "neo/permission.hpp"

using namespace neo;

namespace
{

constexpr std::array<Perm, 5> allPerms = {Perm::I, Perm::S, Perm::O,
                                          Perm::E, Perm::M};

TEST(PermLattice, RanksOrdered)
{
    EXPECT_LT(permRank(Perm::I), permRank(Perm::S));
    EXPECT_LT(permRank(Perm::S), permRank(Perm::O));
    EXPECT_LT(permRank(Perm::O), permRank(Perm::E));
    EXPECT_EQ(permRank(Perm::E), permRank(Perm::M));
    EXPECT_LT(permRank(Perm::M), permRank(Perm::Bad));
}

TEST(PermLattice, CompatibilityTable)
{
    // I is compatible with everything (non-bad).
    for (Perm p : allPerms) {
        EXPECT_TRUE(permCompatible(Perm::I, p));
        EXPECT_TRUE(permCompatible(p, Perm::I));
    }
    // Exclusives tolerate only I.
    for (Perm x : {Perm::E, Perm::M}) {
        for (Perm p : {Perm::S, Perm::O, Perm::E, Perm::M}) {
            EXPECT_FALSE(permCompatible(x, p))
                << permName(x) << " vs " << permName(p);
        }
    }
    // Single owner; owner coexists with sharers.
    EXPECT_TRUE(permCompatible(Perm::O, Perm::S));
    EXPECT_FALSE(permCompatible(Perm::O, Perm::O));
    EXPECT_TRUE(permCompatible(Perm::S, Perm::S));
    // Bad poisons everything.
    for (Perm p : allPerms)
        EXPECT_FALSE(permCompatible(Perm::Bad, p));
}

TEST(PermLattice, CompatibilityIsSymmetric)
{
    for (Perm a : allPerms)
        for (Perm b : allPerms)
            EXPECT_EQ(permCompatible(a, b), permCompatible(b, a))
                << permName(a) << " vs " << permName(b);
}

TEST(SumFunction, Requirement1BadPropagates)
{
    // §2.2 requirement (1): any bad child makes the composite bad.
    for (Perm node : allPerms) {
        const Perm sums[] = {Perm::I, Perm::Bad};
        EXPECT_EQ(composeSum(node, sums), Perm::Bad)
            << "node " << permName(node);
    }
}

TEST(SumFunction, Requirement2ViolationsSurface)
{
    // §2.2 requirement (2): incompatible children make it bad.
    const Perm two_m[] = {Perm::M, Perm::M};
    EXPECT_EQ(composeSum(Perm::M, two_m), Perm::Bad);
    const Perm e_and_s[] = {Perm::E, Perm::S};
    EXPECT_EQ(composeSum(Perm::M, e_and_s), Perm::Bad);
    const Perm o_and_o[] = {Perm::O, Perm::O};
    EXPECT_EQ(composeSum(Perm::M, o_and_o), Perm::Bad);
}

TEST(SumFunction, PermissionPrincipleEnforced)
{
    // §3.2: no child may exceed the node's Permission.
    const Perm m_child[] = {Perm::M};
    EXPECT_EQ(composeSum(Perm::S, m_child), Perm::Bad);
    EXPECT_EQ(composeSum(Perm::I, m_child), Perm::Bad);
    // E and M share the top rank: a child in M under E is permitted
    // (the silent-upgrade convention).
    EXPECT_EQ(composeSum(Perm::E, m_child), Perm::E);
}

TEST(SumFunction, HealthyCompositionsReturnPermission)
{
    const Perm sharers[] = {Perm::S, Perm::S, Perm::I};
    EXPECT_EQ(composeSum(Perm::S, sharers), Perm::S);
    EXPECT_EQ(composeSum(Perm::M, sharers), Perm::M);
    const Perm owner_mix[] = {Perm::O, Perm::S, Perm::I};
    EXPECT_EQ(composeSum(Perm::M, owner_mix), Perm::M);
    const Perm empty[] = {Perm::I, Perm::I};
    for (Perm node : allPerms)
        EXPECT_EQ(composeSum(node, empty), node);
}

TEST(SumFunction, RecursiveHierarchyExample)
{
    // A 3-level composition: two healthy subtrees under a root.
    const Perm left_children[] = {Perm::S, Perm::S};
    const Perm left = composeSum(Perm::S, left_children);
    const Perm right_children[] = {Perm::I, Perm::I};
    const Perm right = composeSum(Perm::I, right_children);
    const Perm top[] = {left, right};
    EXPECT_EQ(composeSum(Perm::M, top), Perm::M);

    // Poison one leaf: the root summary must turn bad.
    const Perm bad_left_children[] = {Perm::M, Perm::S};
    const Perm bad_left = composeSum(Perm::S, bad_left_children);
    const Perm bad_top[] = {bad_left, right};
    EXPECT_EQ(composeSum(Perm::M, bad_top), Perm::Bad);
}

TEST(Executions, InternalActionsAreLambda)
{
    const Action a{"anything", ActionKind::Internal};
    const Action b{"else", ActionKind::Internal};
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, lambda());
    const Action in{"Inv", ActionKind::Input};
    const Action out{"Inv", ActionKind::Output};
    EXPECT_FALSE(in == out); // same name, different kind
}

TEST(Executions, StutterCompression)
{
    ExecutionSummary e;
    e.initialSum = Perm::S;
    e.steps = {
        {lambda(), Perm::S}, // pure stutter: dropped
        {lambda(), Perm::I}, // perm-changing internal: kept
        {Action{"InvAck", ActionKind::Output}, Perm::I},
        {lambda(), Perm::I}, // stutter: dropped
    };
    const auto c = e.compressStutter();
    EXPECT_EQ(c.steps.size(), 2u);
    EXPECT_EQ(c.steps[0].sum, Perm::I);
    EXPECT_EQ(c.steps[1].action.name, "InvAck");
}

TEST(Executions, MatchIsStutterInsensitiveButActionSensitive)
{
    ExecutionSummary a, b;
    a.initialSum = b.initialSum = Perm::I;
    a.steps = {{Action{"GetS", ActionKind::Output}, Perm::I},
               {lambda(), Perm::S}};
    b.steps = {{lambda(), Perm::I},
               {Action{"GetS", ActionKind::Output}, Perm::I},
               {lambda(), Perm::I},
               {lambda(), Perm::S}};
    EXPECT_TRUE(summariesMatch(a, b));

    b.steps.push_back({Action{"GetM", ActionKind::Output}, Perm::S});
    EXPECT_FALSE(summariesMatch(a, b));
}

} // namespace
