/**
 * @file
 * Unit tests for the tree interconnect: topology queries, routing
 * hop counts, latency/serialization modeling, link FIFO ordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "network/tree_network.hpp"

using namespace neo;

namespace
{

struct Sink : MessageConsumer
{
    std::vector<std::pair<Tick, std::string>> got;
    EventQueue *q = nullptr;
    void
    deliver(MessagePtr msg) override
    {
        got.emplace_back(q->curTick(), msg->describe());
    }
};

struct Fixture
{
    EventQueue q;
    NetworkParams params;
    TreeNetwork net{"net", q, params};
    std::vector<Sink> sinks{16};
    std::vector<NodeId> ids;

    Fixture()
    {
        // root(0) -> {a(1) -> {leaf(3), leaf(4)}, b(2) -> {leaf(5)}}
        for (auto &s : sinks)
            s.q = &q;
        ids.push_back(net.addNode(&sinks[0], invalidNode));
        ids.push_back(net.addNode(&sinks[1], ids[0]));
        ids.push_back(net.addNode(&sinks[2], ids[0]));
        ids.push_back(net.addNode(&sinks[3], ids[1]));
        ids.push_back(net.addNode(&sinks[4], ids[1]));
        ids.push_back(net.addNode(&sinks[5], ids[2]));
    }

    void
    send(NodeId src, NodeId dst, std::uint32_t bytes = 8)
    {
        auto m = std::make_unique<Message>();
        m->src = src;
        m->dst = dst;
        m->sizeBytes = bytes;
        net.deliver(std::move(m));
    }
};

TEST(TreeNetwork, TopologyQueries)
{
    Fixture f;
    EXPECT_EQ(f.net.parentOf(f.ids[3]), f.ids[1]);
    EXPECT_EQ(f.net.childrenOf(f.ids[0]).size(), 2u);
    EXPECT_TRUE(f.net.areSiblings(f.ids[3], f.ids[4]));
    EXPECT_FALSE(f.net.areSiblings(f.ids[3], f.ids[5]));
    EXPECT_FALSE(f.net.areSiblings(f.ids[0], f.ids[1]));
}

TEST(TreeNetwork, HopCounts)
{
    Fixture f;
    EXPECT_EQ(f.net.hops(f.ids[3], f.ids[1]), 1u); // child-parent
    EXPECT_EQ(f.net.hops(f.ids[3], f.ids[4]), 2u); // siblings
    EXPECT_EQ(f.net.hops(f.ids[3], f.ids[5]), 4u); // across the root
    EXPECT_EQ(f.net.hops(f.ids[3], f.ids[0]), 2u);
    EXPECT_EQ(f.net.hops(f.ids[2], f.ids[2]), 0u);
}

TEST(TreeNetwork, LatencyScalesWithHops)
{
    Fixture f;
    f.send(f.ids[3], f.ids[1]); // 1 hop
    f.q.run();
    ASSERT_EQ(f.sinks[1].got.size(), 1u);
    const Tick one_hop = f.sinks[1].got[0].first;

    f.send(f.ids[3], f.ids[5]); // 4 hops
    f.q.run();
    ASSERT_EQ(f.sinks[5].got.size(), 1u);
    const Tick start = one_hop; // current tick when second was sent
    const Tick four_hops = f.sinks[5].got[0].first - start;
    EXPECT_NEAR(static_cast<double>(four_hops),
                4.0 * static_cast<double>(one_hop), 1.0);
}

TEST(TreeNetwork, LargerMessagesSerializeLonger)
{
    Fixture f;
    f.send(f.ids[3], f.ids[1], 8);
    f.q.run();
    const Tick small = f.sinks[1].got.at(0).first;
    Fixture g;
    g.send(g.ids[3], g.ids[1], 72);
    g.q.run();
    const Tick big = g.sinks[1].got.at(0).first;
    EXPECT_GT(big, small);
}

TEST(TreeNetwork, PerLinkFifoOrdering)
{
    Fixture f;
    // Two messages down the same link, the big one first: the second
    // must not overtake (store-and-forward occupancy).
    auto first = std::make_unique<Message>();
    first->src = f.ids[0];
    first->dst = f.ids[1];
    first->sizeBytes = 72;
    auto second = std::make_unique<Message>();
    second->src = f.ids[0];
    second->dst = f.ids[1];
    second->sizeBytes = 8;
    f.net.deliver(std::move(first));
    f.net.deliver(std::move(second));
    f.q.run();
    ASSERT_EQ(f.sinks[1].got.size(), 2u);
    EXPECT_LE(f.sinks[1].got[0].first, f.sinks[1].got[1].first);
}

TEST(TreeNetwork, StatsAccumulate)
{
    Fixture f;
    f.send(f.ids[3], f.ids[4], 8);
    f.send(f.ids[3], f.ids[5], 72);
    f.q.run();
    EXPECT_EQ(f.net.messageCount().value(), 2u);
    EXPECT_EQ(f.net.totalBytes().value(), 80u);
    EXPECT_EQ(f.net.hopStat().count(), 2u);
    EXPECT_DOUBLE_EQ(f.net.hopStat().max(), 4.0);
}

} // namespace
