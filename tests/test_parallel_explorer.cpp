/**
 * @file
 * Differential tests locking the sharded parallel explorer to the
 * sequential BFS: for every bundled model (German, flat closed, flat
 * open across feature configs and instance sizes) the status, the
 * violated-invariant name, the fixpoint state count, the total
 * transitions fired and the per-rule fire counts must be identical at
 * 2/4/8 worker threads. Violation traces may legitimately differ from
 * the sequential ones, so they are instead replayed through the
 * transition system and must end in a genuinely violating state.
 *
 * Also here: randomized property tests for the symmetry
 * canonicalization (idempotence, leaf-permutation invariance) that
 * the shard hash depends on, and regressions for the memory-bound
 * accounting shared by both exploration modes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <random>
#include <string>

#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/parametric.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

constexpr unsigned kThreadCounts[] = {2, 4, 8};

/** Replay a counterexample trace through the transition system and
 *  require it to end in a state some invariant rejects. */
void
replayTrace(const TransitionSystem &ts,
            const std::vector<std::string> &trace)
{
    ASSERT_FALSE(trace.empty());
    const auto &canon = ts.canonicalizer();
    VState s = ts.initialState();
    if (canon)
        canon(s);
    for (const std::string &step : trace) {
        const TransitionSystem::Rule *rule = nullptr;
        for (const auto &r : ts.rules()) {
            if (r.name == step) {
                rule = &r;
                break;
            }
        }
        ASSERT_NE(rule, nullptr) << "trace names unknown rule " << step;
        ASSERT_TRUE(rule->guard(s)) << "guard false at step " << step;
        rule->effect(s);
        if (canon)
            canon(s);
    }
    bool violated = false;
    for (const auto &inv : ts.invariants())
        violated = violated || !inv.check(s);
    EXPECT_TRUE(violated) << "trace does not reach a violating state";
}

/** Run sequential vs parallel and assert the equivalence contract. */
void
expectDifferentialMatch(const TransitionSystem &ts)
{
    const ExploreLimits lim{2'000'000, 120.0};
    const ExploreResult seq = explore(ts, lim, false, true);
    for (unsigned t : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(t));
        ExploreLimits plim = lim;
        plim.threads = t;
        const ExploreResult par = explore(ts, plim, false, true);
        EXPECT_EQ(par.status, seq.status)
            << verifStatusName(par.status) << " vs "
            << verifStatusName(seq.status);
        EXPECT_EQ(par.violatedInvariant, seq.violatedInvariant);
        if (seq.status == VerifStatus::Verified) {
            EXPECT_EQ(par.statesExplored, seq.statesExplored);
            EXPECT_EQ(par.transitionsFired, seq.transitionsFired);
            EXPECT_EQ(par.ruleFires, seq.ruleFires);
            // A Verified run checked every invariant on every state,
            // exactly once, in both engines.
            EXPECT_EQ(par.invariantChecks, seq.invariantChecks);
            EXPECT_EQ(seq.invariantChecks,
                      seq.statesExplored * ts.invariants().size());
        } else if (seq.status == VerifStatus::InvariantViolated) {
            replayTrace(ts, par.trace);
        }
    }
}

TEST(ParallelDifferential, German)
{
    for (std::size_t n : {2u, 3u, 4u}) {
        SCOPED_TRACE("N=" + std::to_string(n));
        ModelShape shape;
        expectDifferentialMatch(buildGermanModel(n, shape));
    }
}

TEST(ParallelDifferential, FlatClosedFeatureLadder)
{
    struct Feat
    {
        const char *name;
        VerifFeatures f;
    };
    const Feat feats[] = {
        {"msi", VerifFeatures::baselineMSI()},
        {"msi-incl", VerifFeatures::inclusiveMSI()},
        {"neomesi", VerifFeatures::neoMESI()},
        {"moesi", VerifFeatures::withOwned()},
    };
    for (const Feat &feat : feats) {
        for (std::size_t n : {2u, 3u}) {
            SCOPED_TRACE(std::string(feat.name) + "/N=" +
                         std::to_string(n));
            ModelShape shape;
            expectDifferentialMatch(
                buildClosedModel(n, feat.f, shape));
        }
    }
}

TEST(ParallelDifferential, FlatOpenBothMethodologies)
{
    struct Cfg
    {
        const char *name;
        VerifFeatures f;
        CompositionMethod m;
        std::size_t n;
    };
    const Cfg cfgs[] = {
        {"msi/original/N=2", VerifFeatures::baselineMSI(),
         CompositionMethod::Original, 2},
        {"msi/modified/N=3", VerifFeatures::baselineMSI(),
         CompositionMethod::Modified, 3},
        {"neomesi/modified/N=2", VerifFeatures::neoMESI(),
         CompositionMethod::Modified, 2},
        {"neomesi/modified/N=3", VerifFeatures::neoMESI(),
         CompositionMethod::Modified, 3},
    };
    for (const Cfg &cfg : cfgs) {
        SCOPED_TRACE(cfg.name);
        ModelShape shape;
        expectDifferentialMatch(
            buildOpenModel(cfg.n, cfg.f, cfg.m, shape));
    }
}

TEST(ParallelDifferential, NonSiblingViolationFoundAndReplayable)
{
    // The designed-in §4.2.1 composition failure: every thread count
    // must agree on the violated invariant, and each parallel trace —
    // even when it differs from the sequential BFS one — must replay
    // to a genuinely violating state.
    VerifFeatures f = VerifFeatures::neoMESI();
    f.nonSiblingFwd = true;
    for (std::size_t n : {2u, 3u}) {
        SCOPED_TRACE("N=" + std::to_string(n));
        ModelShape shape;
        const TransitionSystem ts =
            buildOpenModel(n, f, CompositionMethod::Modified, shape);
        expectDifferentialMatch(ts);
    }
}

TEST(ParallelDifferential, DeadlockDetected)
{
    // A chain with no rule out of its final state deadlocks in both
    // modes when detection is on, and verifies when it is off.
    auto build = [] {
        TransitionSystem ts;
        const auto x = ts.addVar("x", 0);
        ts.addRule(
            "step", ActionKind::Internal,
            [x](const VState &s) { return s[x] < 40; },
            [x](VState &s) { ++s[x]; });
        return ts;
    };
    for (unsigned t : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(t));
        ExploreLimits lim{1000, 30.0};
        lim.threads = t;
        const TransitionSystem ts = build();
        EXPECT_EQ(explore(ts, lim, true).status,
                  VerifStatus::Deadlock);
        EXPECT_EQ(explore(ts, lim, false).status,
                  VerifStatus::Verified);
    }
}

TEST(ParallelDifferential, OnStateSeesEveryState)
{
    // The serialized callback fires exactly once per canonical state.
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(3, VerifFeatures::neoMESI(), shape);
    ExploreLimits lim{2'000'000, 60.0};
    lim.threads = 4;
    std::uint64_t visits = 0;
    const ExploreResult r = explore(ts, lim, false, true,
                                    [&](const VState &) { ++visits; });
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_EQ(visits, r.statesExplored);
}

TEST(ParallelDifferential, ParametricSweepMatches)
{
    // The cutoff-convergence sweep must reach the same verdict,
    // cutoff and view-set sizes when each instance explores in
    // parallel internally.
    ExploreLimits lim{2'000'000, 60.0};
    const ParametricResult seq =
        verifyParametric(germanModelFactory(), 1, 5, lim);
    lim.threads = 4;
    const ParametricResult par =
        verifyParametric(germanModelFactory(), 1, 5, lim);
    EXPECT_EQ(par.status, seq.status);
    EXPECT_EQ(par.converged, seq.converged);
    EXPECT_EQ(par.cutoff, seq.cutoff);
    EXPECT_EQ(par.abstractSetSizes, seq.abstractSetSizes);
    ASSERT_EQ(par.perInstance.size(), seq.perInstance.size());
    for (std::size_t i = 0; i < seq.perInstance.size(); ++i)
        EXPECT_EQ(par.perInstance[i].statesExplored,
                  seq.perInstance[i].statesExplored);
}

TEST(ParallelDifferential, MemoryBoundTriggersInBothModes)
{
    // Regression for the memoryBytes accounting fix: a bound tight
    // enough to trip the (now trace-inclusive) estimate must yield
    // LimitExceeded in the sequential AND the parallel mode.
    ModelShape shape;
    const TransitionSystem ts =
        buildClosedModel(3, VerifFeatures::neoMESI(), shape);
    ExploreLimits lim{2'000'000, 60.0};
    lim.maxMemoryBytes = 20'000; // ~150 states' worth
    EXPECT_EQ(explore(ts, lim, false, true).status,
              VerifStatus::LimitExceeded);
    for (unsigned t : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(t));
        ExploreLimits plim = lim;
        plim.threads = t;
        EXPECT_EQ(explore(ts, plim, false, true).status,
                  VerifStatus::LimitExceeded);
    }
}

// ---------------------------------------------------------------
// Canonicalization property/stress tests. The sharded visited set
// hashes canonical representatives, so correctness of the parallel
// explorer leans on the canonicalizer being (a) idempotent and
// (b) invariant under any permutation of the identical leaves.
// ---------------------------------------------------------------

unsigned
propertySeed()
{
    if (const char *env = std::getenv("NEO_CANON_SEED"))
        return static_cast<unsigned>(
            std::strtoul(env, nullptr, 10));
    return std::random_device{}();
}

void
checkCanonicalizerProperties(const TransitionSystem &ts,
                             const ModelShape &shape,
                             const char *name)
{
    const unsigned seed = propertySeed();
    std::printf("[canon-property] %s seed=%u "
                "(set NEO_CANON_SEED=%u to reproduce)\n",
                name, seed, seed);
    std::mt19937 rng(seed);
    const auto &canon = ts.canonicalizer();
    ASSERT_TRUE(static_cast<bool>(canon));
    const std::size_t nvars = ts.numVars();
    ASSERT_EQ(nvars, shape.sharedVars +
                         shape.numLeaves * shape.leafBlockSize);
    std::vector<std::size_t> perm(shape.numLeaves);
    for (int iter = 0; iter < 300; ++iter) {
        // Arbitrary (not necessarily reachable) state: block sorting
        // must canonicalize any byte pattern consistently.
        VState s(nvars);
        for (auto &b : s)
            b = static_cast<std::uint8_t>(rng() % 8);

        VState c1 = s;
        canon(c1);
        VState c2 = c1;
        canon(c2);
        ASSERT_EQ(c1, c2) << "not idempotent (iter " << iter
                          << ", seed " << seed << ")";

        std::iota(perm.begin(), perm.end(), std::size_t{0});
        std::shuffle(perm.begin(), perm.end(), rng);
        VState p = s;
        for (std::size_t l = 0; l < shape.numLeaves; ++l) {
            const auto src =
                shape.sharedVars + perm[l] * shape.leafBlockSize;
            const auto dst =
                shape.sharedVars + l * shape.leafBlockSize;
            std::copy_n(s.begin() + static_cast<long>(src),
                        shape.leafBlockSize,
                        p.begin() + static_cast<long>(dst));
        }
        VState c3 = p;
        canon(c3);
        ASSERT_EQ(c1, c3)
            << "not permutation-invariant (iter " << iter << ", seed "
            << seed << ")";
    }
}

TEST(CanonicalizationProperty, FlatClosed)
{
    for (std::size_t n : {2u, 4u, 7u}) {
        ModelShape shape;
        const TransitionSystem ts =
            buildClosedModel(n, VerifFeatures::neoMESI(), shape);
        checkCanonicalizerProperties(
            ts, shape,
            ("flat_closed/N=" + std::to_string(n)).c_str());
    }
}

TEST(CanonicalizationProperty, FlatOpen)
{
    for (std::size_t n : {2u, 5u}) {
        ModelShape shape;
        const TransitionSystem ts = buildOpenModel(
            n, VerifFeatures::neoMESI(), CompositionMethod::Modified,
            shape);
        checkCanonicalizerProperties(
            ts, shape, ("flat_open/N=" + std::to_string(n)).c_str());
    }
}

TEST(CanonicalizationProperty, German)
{
    for (std::size_t n : {3u, 6u}) {
        ModelShape shape;
        const TransitionSystem ts = buildGermanModel(n, shape);
        checkCanonicalizerProperties(
            ts, shape, ("german/N=" + std::to_string(n)).c_str());
    }
}

} // namespace
