/**
 * @file
 * Directed protocol scenarios on small trees: the classic coherence
 * transactions (read, share, write, upgrade, invalidation, eviction)
 * across every protocol variant, with the Neo-sum coherence checker
 * run after each step.
 */

#include <gtest/gtest.h>

#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

class ProtocolBasic : public ::testing::TestWithParam<ProtocolVariant>
{
  protected:
    void
    build(unsigned n_l2 = 2, unsigned n_l1 = 2)
    {
        spec_ = tinyTree(GetParam(), n_l2, n_l1);
        system_ = std::make_unique<System>(spec_, eventq_);
    }

    void
    expectCoherent()
    {
        ASSERT_TRUE(system_->checker().quiescent());
        const auto v = system_->checker().check();
        for (const auto &s : v)
            ADD_FAILURE() << s;
    }

    EventQueue eventq_;
    HierarchySpec spec_;
    std::unique_ptr<System> system_;
};

TEST_P(ProtocolBasic, SingleReadFillsLine)
{
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x1000, false));
    const Perm p = system_->l1(0).blockPerm(0x1000);
    if (ProtocolConfig::forVariant(GetParam()).exclusiveState)
        EXPECT_EQ(p, Perm::E);
    else
        EXPECT_EQ(p, Perm::S);
    expectCoherent();
}

TEST_P(ProtocolBasic, SingleWriteGivesM)
{
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x1000, true));
    EXPECT_EQ(system_->l1(0).blockPerm(0x1000), Perm::M);
    expectCoherent();
}

TEST_P(ProtocolBasic, TwoReadersShare)
{
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x2000, false));
    // Reader in the *other* L2 subtree.
    ASSERT_TRUE(access(eventq_, system_->l1(2), 0x2000, false));
    if (ProtocolConfig::forVariant(GetParam()).ownedState) {
        // The exclusive first reader stays the (clean) owner in O.
        EXPECT_EQ(system_->l1(0).blockPerm(0x2000), Perm::O);
    } else {
        EXPECT_EQ(system_->l1(0).blockPerm(0x2000), Perm::S);
    }
    EXPECT_EQ(system_->l1(2).blockPerm(0x2000), Perm::S);
    expectCoherent();
}

TEST_P(ProtocolBasic, WriteInvalidatesRemoteReader)
{
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x3000, false));
    ASSERT_TRUE(access(eventq_, system_->l1(2), 0x3000, true));
    EXPECT_EQ(system_->l1(0).blockPerm(0x3000), Perm::I);
    EXPECT_EQ(system_->l1(2).blockPerm(0x3000), Perm::M);
    expectCoherent();
}

TEST_P(ProtocolBasic, WriteInvalidatesSiblingReader)
{
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x3040, false));
    ASSERT_TRUE(access(eventq_, system_->l1(1), 0x3040, true));
    EXPECT_EQ(system_->l1(0).blockPerm(0x3040), Perm::I);
    EXPECT_EQ(system_->l1(1).blockPerm(0x3040), Perm::M);
    expectCoherent();
}

TEST_P(ProtocolBasic, ReadAfterRemoteWriteForwardsData)
{
    // Figure 4/5/6 scenario: a reader misses while a cache in another
    // subtree holds the block in M.
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(3), 0x4000, true));
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x4000, false));
    EXPECT_EQ(system_->l1(0).blockPerm(0x4000), Perm::S);
    const Perm writer = system_->l1(3).blockPerm(0x4000);
    if (ProtocolConfig::forVariant(GetParam()).ownedState)
        EXPECT_EQ(writer, Perm::O);
    else
        EXPECT_EQ(writer, Perm::S);
    expectCoherent();
}

TEST_P(ProtocolBasic, UpgradeFromShared)
{
    build();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x5000, false));
    ASSERT_TRUE(access(eventq_, system_->l1(2), 0x5000, false));
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x5000, true));
    EXPECT_EQ(system_->l1(0).blockPerm(0x5000), Perm::M);
    EXPECT_EQ(system_->l1(2).blockPerm(0x5000), Perm::I);
    expectCoherent();
}

TEST_P(ProtocolBasic, SilentExclusiveUpgrade)
{
    build();
    if (!ProtocolConfig::forVariant(GetParam()).exclusiveState)
        GTEST_SKIP() << "MSI has no E state";
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x6000, false));
    ASSERT_EQ(system_->l1(0).blockPerm(0x6000), Perm::E);
    const auto misses_before = system_->l1(0).misses().value();
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x6000, true));
    EXPECT_EQ(system_->l1(0).blockPerm(0x6000), Perm::M);
    // The whole point of E: the write produced no new miss.
    EXPECT_EQ(system_->l1(0).misses().value(), misses_before);
    expectCoherent();
}

TEST_P(ProtocolBasic, CapacityEvictionWritesBack)
{
    build();
    auto &l1 = system_->l1(0);
    // The tiny L1 holds 8 blocks (2-way x 4 sets); writing 9 blocks
    // that collide in a set forces a dirty eviction.
    for (unsigned i = 0; i < 9; ++i) {
        const Addr a = 0x10000 + static_cast<Addr>(i) * tinyL1().sizeBytes / 2;
        ASSERT_TRUE(access(eventq_, l1, a, true)) << "op " << i;
    }
    EXPECT_GT(l1.evictions().value(), 0u);
    expectCoherent();
}

TEST_P(ProtocolBasic, ReadSharedByAllCores)
{
    build(2, 2);
    for (std::size_t i = 0; i < system_->numL1s(); ++i)
        ASSERT_TRUE(access(eventq_, system_->l1(i), 0x7000, false));
    const bool moesi =
        ProtocolConfig::forVariant(GetParam()).ownedState;
    for (std::size_t i = 0; i < system_->numL1s(); ++i) {
        const Perm p = system_->l1(i).blockPerm(0x7000);
        if (moesi && i == 0)
            EXPECT_EQ(p, Perm::O);
        else
            EXPECT_EQ(p, Perm::S);
    }
    expectCoherent();
}

TEST_P(ProtocolBasic, WriteRotatesOwnershipAcrossAllCores)
{
    build(2, 2);
    for (std::size_t i = 0; i < system_->numL1s(); ++i)
        ASSERT_TRUE(access(eventq_, system_->l1(i), 0x8000, true));
    for (std::size_t i = 0; i + 1 < system_->numL1s(); ++i)
        EXPECT_EQ(system_->l1(i).blockPerm(0x8000), Perm::I);
    EXPECT_EQ(system_->l1(system_->numL1s() - 1).blockPerm(0x8000),
              Perm::M);
    expectCoherent();
}

TEST_P(ProtocolBasic, DeepUnbalancedTree)
{
    spec_ = deepTree(GetParam());
    system_ = std::make_unique<System>(spec_, eventq_);
    // Writer deep in subtree A, reader in subtree B, writer in C.
    ASSERT_TRUE(access(eventq_, system_->l1(0), 0x9000, true));
    ASSERT_TRUE(access(eventq_, system_->l1(4), 0x9000, false));
    ASSERT_TRUE(access(eventq_, system_->l1(7), 0x9000, true));
    EXPECT_EQ(system_->l1(7).blockPerm(0x9000), Perm::M);
    EXPECT_EQ(system_->l1(0).blockPerm(0x9000), Perm::I);
    EXPECT_EQ(system_->l1(4).blockPerm(0x9000), Perm::I);
    expectCoherent();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolBasic,
    ::testing::Values(ProtocolVariant::TreeMSI, ProtocolVariant::NeoMESI,
                      ProtocolVariant::NSMESI, ProtocolVariant::NSMOESI),
    [](const ::testing::TestParamInfo<ProtocolVariant> &info) {
        std::string n = protocolName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
