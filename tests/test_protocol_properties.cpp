/**
 * @file
 * Property-based protocol tests: protocol-independent invariants
 * checked over randomized sweeps of protocol x tree shape x seed.
 *
 *  P1  Eventual completion: every issued request finishes (no
 *      deadlock, no lost message) on every swept configuration.
 *  P2  Single writer at quiescence: at most one L1 holds E/M per
 *      block, and then every other L1 holds I.
 *  P3  Inclusion: an L1-resident block is tracked with non-I
 *      Permission by every directory on its path to the root.
 *  P4  Directory precision: every child holding a block appears in
 *      its directory's sharer/owner bookkeeping.
 *  P5  Eviction storms stay coherent: cache pressure with write-heavy
 *      traffic, including directory-level recalls.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "core/system.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

class ProtocolProperties
    : public ::testing::TestWithParam<ProtocolVariant>
{
  protected:
    /** Drive random traffic to completion; assert P1. */
    void
    drive(System &system, EventQueue &eventq, unsigned ops_per_core,
          unsigned num_blocks, std::uint64_t seed)
    {
        const auto cores = static_cast<unsigned>(system.numL1s());
        Random rng(seed);
        std::vector<unsigned> left(cores, ops_per_core);
        unsigned done = 0;
        std::function<void(unsigned)> issue = [&](unsigned c) {
            if (left[c] == 0) {
                ++done;
                return;
            }
            --left[c];
            system.l1(c).coreRequest(rng.below(num_blocks) * 64,
                                     rng.chance(0.5),
                                     [&issue, c] { issue(c); });
        };
        for (unsigned c = 0; c < cores; ++c)
            issue(c);
        eventq.run(maxTick, 80'000'000);
        ASSERT_TRUE(eventq.empty()) << "P1: queue did not drain";
        ASSERT_EQ(done, cores) << "P1: a core never finished";
        ASSERT_TRUE(system.checker().quiescent());
    }

    /** Assert P2/P3/P4 on the final quiescent state. */
    void
    checkStructure(System &system)
    {
        // Collect per-block L1 states.
        std::map<Addr, std::vector<std::pair<std::size_t, Perm>>>
            holders;
        for (std::size_t i = 0; i < system.numL1s(); ++i) {
            system.l1(i).forEachLine(
                [&holders, i](Addr a, L1State s) {
                    const Perm p = l1StatePerm(s);
                    if (p != Perm::I)
                        holders[a].emplace_back(i, p);
                });
        }

        for (const auto &[addr, list] : holders) {
            // P2: single writer.
            unsigned exclusive = 0;
            for (const auto &[idx, p] : list)
                if (permRank(p) >= permRank(Perm::E))
                    ++exclusive;
            EXPECT_LE(exclusive, 1u)
                << "P2 violated at 0x" << std::hex << addr;
            if (exclusive == 1)
                EXPECT_EQ(list.size(), 1u)
                    << "P2: writer coexists with holders at 0x"
                    << std::hex << addr;

            // P3: inclusion along the path to the root.
            for (const auto &[idx, p] : list) {
                NodeId node = system.l1(idx).parentId();
                while (node != invalidNode) {
                    const DirController *dir = nullptr;
                    for (std::size_t d = 0; d < system.numDirs(); ++d)
                        if (system.dir(d).nodeId() == node)
                            dir = &system.dir(d);
                    ASSERT_NE(dir, nullptr);
                    EXPECT_NE(dir->blockPerm(addr), Perm::I)
                        << "P3: " << dir->name()
                        << " does not track 0x" << std::hex << addr;
                    node = dir->parentId();
                }
            }
        }

        // P4: directory bookkeeping covers every holding child.
        for (std::size_t d = 0; d < system.numDirs(); ++d) {
            const DirController &dir = system.dir(d);
            std::map<NodeId, std::size_t> slot_of;
            for (std::size_t s = 0; s < dir.numChildren(); ++s)
                slot_of[dir.childAt(s)] = s;

            auto child_perm = [&](NodeId child,
                                  Addr addr) -> Perm {
                for (std::size_t i = 0; i < system.numL1s(); ++i)
                    if (system.l1(i).nodeId() == child)
                        return system.l1(i).blockPerm(addr);
                for (std::size_t i = 0; i < system.numDirs(); ++i)
                    if (system.dir(i).nodeId() == child)
                        return system.dir(i).blockPerm(addr);
                return Perm::I;
            };

            dir.forEachEntry([&](const DirController::EntryView &e) {
                for (const auto &[child, slot] : slot_of) {
                    const Perm p = child_perm(child, e.addr);
                    if (p == Perm::I)
                        continue;
                    const bool tracked =
                        (e.sharers >> slot) & 1u ||
                        e.owner == static_cast<int>(slot);
                    EXPECT_TRUE(tracked)
                        << "P4: " << dir.name() << " lost child "
                        << child << " holding 0x" << std::hex
                        << e.addr << " in " << permName(p);
                }
            });
        }
    }
};

TEST_P(ProtocolProperties, InvariantsHoldAcrossShapesAndSeeds)
{
    const struct
    {
        unsigned l2s, l1s;
    } shapes[] = {{2, 2}, {3, 2}, {2, 3}};
    for (const auto &shape : shapes) {
        for (std::uint64_t seed : {1ull, 77ull}) {
            EventQueue eventq;
            HierarchySpec spec =
                tinyTree(GetParam(), shape.l2s, shape.l1s);
            System system(spec, eventq);
            drive(system, eventq, 250, 20, seed);
            const auto v = system.checker().check();
            for (const auto &s : v)
                ADD_FAILURE() << s;
            checkStructure(system);
        }
    }
}

TEST_P(ProtocolProperties, InvariantsHoldOnDeepUnbalancedTrees)
{
    EventQueue eventq;
    HierarchySpec spec = deepTree(GetParam());
    System system(spec, eventq);
    drive(system, eventq, 300, 16, 1234);
    const auto v = system.checker().check();
    for (const auto &s : v)
        ADD_FAILURE() << s;
    checkStructure(system);
}

TEST_P(ProtocolProperties, EvictionStormStaysCoherent)
{
    // P5: working set far beyond the L1s AND the L2s, write-heavy, so
    // leaf evictions and directory recalls fire constantly.
    EventQueue eventq;
    HierarchySpec spec = tinyTree(GetParam(), 2, 2);
    System system(spec, eventq);
    const auto cores = static_cast<unsigned>(system.numL1s());
    Random rng(5);
    std::vector<unsigned> left(cores, 400);
    std::function<void(unsigned)> issue = [&](unsigned c) {
        if (left[c]-- == 0)
            return;
        // 160 blocks >> 8-block L1s and 32-block L2s.
        system.l1(c).coreRequest(rng.below(160) * 64, rng.chance(0.7),
                                 [&issue, c] { issue(c); });
    };
    for (unsigned c = 0; c < cores; ++c)
        issue(c);
    eventq.run(maxTick, 80'000'000);
    ASSERT_TRUE(eventq.empty());
    std::uint64_t dir_evictions = 0;
    for (std::size_t d = 0; d < system.numDirs(); ++d)
        dir_evictions += system.dir(d).requestArrivals().value();
    EXPECT_GT(system.l1(0).evictions().value(), 0u);
    const auto v = system.checker().check();
    for (const auto &s : v)
        ADD_FAILURE() << s;
    checkStructure(system);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolProperties,
    ::testing::Values(ProtocolVariant::TreeMSI, ProtocolVariant::NeoMESI,
                      ProtocolVariant::NSMESI, ProtocolVariant::NSMOESI),
    [](const ::testing::TestParamInfo<ProtocolVariant> &info) {
        std::string n = protocolName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
