/**
 * @file
 * Randomized concurrent stress over every protocol variant and several
 * tree shapes. All cores issue overlapping traffic on a small address
 * pool (maximizing conflicts, forwards, recalls and evictions); the
 * run must drain without deadlock and pass the Neo-sum coherence
 * checker, both at the end and at quiescent points reached mid-run.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/sim_runner.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

struct StressShape
{
    const char *name;
    unsigned l2s;
    unsigned l1sPerL2;
};

using StressParam = std::tuple<ProtocolVariant, StressShape>;

class ProtocolStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(ProtocolStress, RandomConflictTraffic)
{
    const auto [variant, shape] = GetParam();
    EventQueue eventq;
    HierarchySpec spec = tinyTree(variant, shape.l2s, shape.l1sPerL2);
    System system(spec, eventq);

    const unsigned num_cores = static_cast<unsigned>(system.numL1s());
    constexpr unsigned ops_per_core = 400;
    constexpr unsigned num_blocks = 24; // tiny pool -> heavy conflicts

    Random rng(12345);
    std::vector<unsigned> remaining(num_cores, ops_per_core);
    unsigned live = num_cores;

    // Self-rescheduling issuer per core.
    std::function<void(unsigned)> issue = [&](unsigned c) {
        if (remaining[c] == 0) {
            --live;
            return;
        }
        --remaining[c];
        const Addr addr = rng.below(num_blocks) * 64;
        const bool write = rng.chance(0.45);
        system.l1(c).coreRequest(addr, write,
                                 [&issue, c]() { issue(c); });
    };
    for (unsigned c = 0; c < num_cores; ++c)
        issue(c);

    std::uint64_t checks = 0;
    while (!eventq.empty()) {
        eventq.run(maxTick, 5000);
        if (system.checker().quiescent()) {
            const auto v = system.checker().check();
            for (const auto &s : v)
                FAIL() << "mid-run violation: " << s;
            ++checks;
        }
        ASSERT_LT(eventq.processedCount(), 50'000'000u)
            << "runaway event loop (livelock?)";
    }

    EXPECT_EQ(live, 0u) << "deadlock: not all cores finished";
    ASSERT_TRUE(system.checker().quiescent());
    const auto v = system.checker().check();
    for (const auto &s : v)
        FAIL() << "final violation: " << s;
}

TEST_P(ProtocolStress, HotBlockContention)
{
    // Every core hammers the SAME block with writes: maximal
    // invalidation/forward churn through the common ancestor.
    const auto [variant, shape] = GetParam();
    EventQueue eventq;
    HierarchySpec spec = tinyTree(variant, shape.l2s, shape.l1sPerL2);
    System system(spec, eventq);

    const unsigned num_cores = static_cast<unsigned>(system.numL1s());
    std::vector<unsigned> remaining(num_cores, 120);
    std::function<void(unsigned)> issue = [&](unsigned c) {
        if (remaining[c] == 0)
            return;
        --remaining[c];
        system.l1(c).coreRequest(0x40, true,
                                 [&issue, c]() { issue(c); });
    };
    for (unsigned c = 0; c < num_cores; ++c)
        issue(c);

    eventq.run(maxTick, 20'000'000);
    ASSERT_TRUE(eventq.empty()) << "deadlock under hot-block writes";
    for (unsigned c = 0; c < num_cores; ++c)
        EXPECT_EQ(remaining[c], 0u);
    const auto v = system.checker().check();
    for (const auto &s : v)
        FAIL() << s;
}

TEST_P(ProtocolStress, MixedWorkloadViaRunner)
{
    const auto [variant, shape] = GetParam();
    HierarchySpec spec = tinyTree(variant, shape.l2s, shape.l1sPerL2);
    WorkloadParams wl;
    wl.name = "stress";
    wl.privateBlocksPerCore = 16;
    wl.sharedBlocks = 24;
    wl.sharedFraction = 0.4;
    wl.sharedWriteFraction = 0.5;
    wl.meanThink = 2.0;
    RunConfig cfg;
    cfg.opsPerCore = 500;
    cfg.seed = 99;
    const RunResult r = runOnce(spec, wl, cfg);
    EXPECT_FALSE(r.deadlocked);
    for (const auto &s : r.violations)
        FAIL() << s;
    EXPECT_GT(r.l1Misses, 0u);
}

constexpr StressShape shapes[] = {
    {"2x2", 2, 2},
    {"4x2", 4, 2},
    {"2x4", 2, 4},
    {"3x3", 3, 3},
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolStress,
    ::testing::Combine(
        ::testing::Values(ProtocolVariant::TreeMSI,
                          ProtocolVariant::NeoMESI,
                          ProtocolVariant::NSMESI,
                          ProtocolVariant::NSMOESI),
        ::testing::ValuesIn(shapes)),
    [](const ::testing::TestParamInfo<StressParam> &info) {
        std::string n = protocolName(std::get<0>(info.param));
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + "_" + std::get<1>(info.param).name;
    });

} // namespace
