/**
 * @file
 * Differential falsification suite (ctest label: fuzz).
 *
 * The mutation corpus is the oracle's oracle: every deliberately
 * broken protocol variant must be caught — by the random-walk
 * falsifier within its documented seed/budget, by exhaustive
 * sequential BFS, and by the sharded parallel explorer — and the
 * violated invariant must match the mutant's tag in all three
 * engines. Conversely, no unmutated bundled model may be flagged
 * under the same walk budget. On top of that: raw and shrunk
 * counterexamples must replay to the tagged violation, shrinking must
 * cut the corpus-average trace length by at least half, walk results
 * must be bit-identical across repeat runs and thread counts, and two
 * golden mutants lock their shrunk length + invariant under the
 * documented seed so silent walker/shrinker drift is caught.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cli_parse.hpp"
#include "verif/explorer.hpp"
#include "verif/models/mutants.hpp"
#include "verif/parallel_explorer.hpp"
#include "verif/random_walk.hpp"
#include "verif/shrink.hpp"

using namespace neo;
using neo::verif::BundledModel;
using neo::verif::bundledModels;
using neo::verif::findMutant;
using neo::verif::Mutant;
using neo::verif::mutantRegistry;

namespace
{

WalkOptions
budgetOf(const Mutant &m)
{
    WalkOptions w;
    w.walks = m.budgetWalks;
    w.depth = m.budgetDepth;
    w.seed = m.budgetSeed;
    return w;
}

/** The walk budget unmutated models must survive: the corpus-wide
 *  default budget (every mutant's documented budget is at least
 *  this). */
WalkOptions
cleanBudget()
{
    WalkOptions w;
    w.walks = 64;
    w.depth = 256;
    w.seed = 1;
    return w;
}

ExploreLimits
bfsLimits(unsigned threads)
{
    ExploreLimits lim;
    lim.maxStates = 2'000'000;
    lim.maxSeconds = 60.0;
    lim.threads = threads;
    return lim;
}

} // namespace

TEST(MutantCorpus, HasAtLeastEightMutants)
{
    EXPECT_GE(mutantRegistry().size(), 8u);
}

TEST(MutantCorpus, NamesAreUniqueAndTagsExist)
{
    for (const Mutant &m : mutantRegistry()) {
        SCOPED_TRACE(m.name);
        EXPECT_EQ(findMutant(m.name), &m);
        ModelShape shape;
        TransitionSystem ts = m.build(shape);
        bool tagged = false;
        for (const auto &inv : ts.invariants())
            tagged = tagged || inv.name == m.violates;
        EXPECT_TRUE(tagged)
            << "mutant tags invariant '" << m.violates
            << "' which the mutated model does not declare";
    }
    EXPECT_EQ(findMutant("no_such_mutant"), nullptr);
}

/** Every mutant is caught by the walker within its documented budget,
 *  and the violated invariant matches the tag. */
TEST(MutantCorpus, WalkerCatchesEveryMutantWithinBudget)
{
    for (const Mutant &m : mutantRegistry()) {
        SCOPED_TRACE(m.name);
        ModelShape shape;
        TransitionSystem ts = m.build(shape);
        const WalkResult w = walkExplore(ts, budgetOf(m));
        ASSERT_EQ(w.status, VerifStatus::InvariantViolated);
        EXPECT_EQ(w.violatedInvariant, m.violates);
        EXPECT_FALSE(w.trace.empty());
        EXPECT_EQ(w.trace.size(), w.traceNames.size());

        // The raw counterexample replays from the initial state and
        // lands in a state violating the tagged invariant.
        const ReplayResult rr = replayTrace(ts, w.trace);
        EXPECT_TRUE(rr.valid);
        EXPECT_EQ(rr.stepsApplied, w.trace.size());
        EXPECT_EQ(rr.violatedInvariant, m.violates);
    }
}

/** Exhaustive BFS agrees: same mutants, same violated invariant. */
TEST(MutantCorpus, SequentialBfsCatchesEveryMutant)
{
    for (const Mutant &m : mutantRegistry()) {
        SCOPED_TRACE(m.name);
        ModelShape shape;
        TransitionSystem ts = m.build(shape);
        const ExploreResult r = explore(ts, bfsLimits(1));
        ASSERT_EQ(r.status, VerifStatus::InvariantViolated);
        EXPECT_EQ(r.violatedInvariant, m.violates);
        EXPECT_FALSE(r.trace.empty());
    }
}

/** The sharded parallel explorer agrees too. */
TEST(MutantCorpus, ParallelExplorerCatchesEveryMutant)
{
    for (const Mutant &m : mutantRegistry()) {
        SCOPED_TRACE(m.name);
        ModelShape shape;
        TransitionSystem ts = m.build(shape);
        const ExploreResult r = exploreParallel(ts, bfsLimits(2));
        ASSERT_EQ(r.status, VerifStatus::InvariantViolated);
        EXPECT_EQ(r.violatedInvariant, m.violates);
    }
}

/** No false alarms: every unmutated bundled model survives the
 *  corpus walk budget clean. */
TEST(MutantCorpus, BundledModelsSurviveWalkBudgetClean)
{
    ASSERT_GE(bundledModels().size(), 4u);
    for (const BundledModel &b : bundledModels()) {
        SCOPED_TRACE(b.name);
        ModelShape shape;
        TransitionSystem ts = b.build(shape);
        const WalkResult w = walkExplore(ts, cleanBudget());
        EXPECT_EQ(w.status, VerifStatus::Verified)
            << "false alarm: " << w.violatedInvariant;
        EXPECT_EQ(w.walksRun, cleanBudget().walks);
    }
}

/** Shrunk traces still replay to the tagged violation, and shrinking
 *  removes at least half the raw firings on corpus average. */
TEST(MutantCorpus, ShrinkingHalvesTracesAndPreservesViolation)
{
    double ratioSum = 0.0;
    std::size_t counted = 0;
    for (const Mutant &m : mutantRegistry()) {
        SCOPED_TRACE(m.name);
        ModelShape shape;
        TransitionSystem ts = m.build(shape);
        const WalkResult w = walkExplore(ts, budgetOf(m));
        ASSERT_EQ(w.status, VerifStatus::InvariantViolated);

        const ShrinkResult s =
            shrinkTrace(ts, w.trace, w.violatedInvariant);
        EXPECT_EQ(s.rawLength, w.trace.size());
        EXPECT_LE(s.shrunkLength, s.rawLength);
        EXPECT_GE(s.shrunkLength, 1u);

        const ReplayResult rr = replayTrace(ts, s.trace);
        EXPECT_TRUE(rr.valid);
        EXPECT_EQ(rr.stepsApplied, s.trace.size());
        EXPECT_EQ(rr.violatedInvariant, m.violates);

        ratioSum += 1.0 - static_cast<double>(s.shrunkLength) /
                              static_cast<double>(s.rawLength);
        ++counted;
    }
    ASSERT_GT(counted, 0u);
    EXPECT_GE(ratioSum / static_cast<double>(counted), 0.5)
        << "mean shrink reduction fell below 50%";
}

/** Golden-trace regression: two representative mutants lock their
 *  shrunk counterexample length and violated invariant under the
 *  documented seed. A change here means the walker's rule selection,
 *  the seed derivation, or the shrinker changed behaviour — bump
 *  deliberately, never silently. */
TEST(MutantCorpus, GoldenShrunkTraces)
{
    struct Golden
    {
        const char *mutant;
        const char *invariant;
        std::size_t shrunkLength;
    };
    const Golden goldens[] = {
        // §4.2 reject: O-state owner supplies data without ownership
        // transfer (MOESI, N=2), seed 1, 64 walks x depth 256.
        {"owner_supplies_without_transfer", "DirTracksHolders", 7},
        // German-protocol control property, seed 1, same budget.
        {"german_grant_E_with_sharers", "CtrlProp", 8},
    };
    for (const Golden &g : goldens) {
        SCOPED_TRACE(g.mutant);
        const Mutant *m = findMutant(g.mutant);
        ASSERT_NE(m, nullptr);
        ModelShape shape;
        TransitionSystem ts = m->build(shape);
        const WalkResult w = walkExplore(ts, budgetOf(*m));
        ASSERT_EQ(w.status, VerifStatus::InvariantViolated);
        EXPECT_EQ(w.violatedInvariant, g.invariant);
        const ShrinkResult s =
            shrinkTrace(ts, w.trace, w.violatedInvariant);
        EXPECT_EQ(s.shrunkLength, g.shrunkLength);
        EXPECT_EQ(s.violatedInvariant, g.invariant);
    }
}

/** Same seed, same budget -> bit-identical result; and the reported
 *  violation is thread-count independent (lowest walk wins). */
TEST(RandomWalk, DeterministicAcrossRunsAndThreads)
{
    const Mutant *m = findMutant("dir_grants_E_with_sharers");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    TransitionSystem ts = m->build(shape);

    const WalkResult a = walkExplore(ts, budgetOf(*m));
    const WalkResult b = walkExplore(ts, budgetOf(*m));
    ASSERT_EQ(a.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(a.walkIndex, b.walkIndex);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.violatedInvariant, b.violatedInvariant);

    WalkOptions threaded = budgetOf(*m);
    threaded.threads = 4;
    const WalkResult c = walkExplore(ts, threaded);
    ASSERT_EQ(c.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(a.walkIndex, c.walkIndex);
    EXPECT_EQ(a.trace, c.trace);
    EXPECT_EQ(a.violatedInvariant, c.violatedInvariant);
}

/** Different master seeds give independent walks (they may both catch
 *  the bug, but the budget bookkeeping must reflect real work). */
TEST(RandomWalk, BudgetBookkeeping)
{
    const Mutant *m = findMutant("leaf_silent_upgrade");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    TransitionSystem ts = m->build(shape);
    const WalkResult w = walkExplore(ts, budgetOf(*m));
    ASSERT_EQ(w.status, VerifStatus::InvariantViolated);
    EXPECT_LT(w.walkIndex, m->budgetWalks);
    EXPECT_GE(w.walksRun, 1u);
    EXPECT_LE(w.walksRun, m->budgetWalks);
    EXPECT_GE(w.stepsTaken, w.trace.size());
}

/** replayTrace refuses traces whose guards do not hold in sequence —
 *  the shrinker's validity oracle must not silently skip steps. */
TEST(RandomWalk, ReplayRejectsInvalidTrace)
{
    const BundledModel &b = bundledModels().front();
    ModelShape shape;
    TransitionSystem ts = b.build(shape);
    // Find a rule disabled in the initial state; replaying it first
    // must come back invalid with zero steps applied.
    VState init = ts.initialState();
    if (ts.canonicalizer())
        ts.canonicalizer()(init);
    for (std::uint32_t r = 0; r < ts.rules().size(); ++r) {
        if (ts.rules()[r].guard(init))
            continue;
        const ReplayResult rr = replayTrace(ts, {r});
        EXPECT_FALSE(rr.valid);
        EXPECT_EQ(rr.stepsApplied, 0u);
        return;
    }
    GTEST_SKIP() << "model has no initially disabled rule";
}

// ---- strict CLI numeric parsing (the neoverify bugfix) ----

TEST(CliParse, AcceptsPlainDecimals)
{
    std::uint64_t u = 0;
    std::string err;
    EXPECT_TRUE(parseU64("0", u, err));
    EXPECT_EQ(u, 0u);
    EXPECT_TRUE(parseU64("18446744073709551615", u, err));
    EXPECT_EQ(u, UINT64_MAX);
    double d = 0.0;
    EXPECT_TRUE(parseF64("2.5", d, err));
    EXPECT_DOUBLE_EQ(d, 2.5);
    EXPECT_TRUE(parseF64("120", d, err));
    EXPECT_DOUBLE_EQ(d, 120.0);
}

TEST(CliParse, RejectsJunkSignsHexAndOverflow)
{
    std::uint64_t u = 0;
    double d = 0.0;
    std::string err;
    const char *badInts[] = {"",   "abc", "3x",  "-1",  "+1",
                             " 1", "0x10", "1e3", "9.5",
                             "18446744073709551616"};
    for (const char *t : badInts) {
        SCOPED_TRACE(t);
        err.clear();
        EXPECT_FALSE(parseU64(t, u, err));
        EXPECT_FALSE(err.empty());
    }
    const char *badFloats[] = {"", "abc", "1.2.3", "-1.0", "1e3",
                               "nan", "inf"};
    for (const char *t : badFloats) {
        SCOPED_TRACE(t);
        err.clear();
        EXPECT_FALSE(parseF64(t, d, err));
        EXPECT_FALSE(err.empty());
    }
}
