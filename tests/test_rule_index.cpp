/**
 * @file
 * Dependency-indexed successor generation: RuleDepIndex construction
 * unit tests, differential fixpoint equality with the index on vs off
 * (sequential, parallel, capacity tiers, the random walker) across
 * every bundled model and corpus mutant, identity-gate fallback
 * behavior when the canonicalizer has no exactness predicate, counter
 * sanity, and StateRing (the compact-tier frontier ring) unit tests.
 *
 * The contract under test: `--no-rule-index` (ExploreLimits/
 * WalkOptions::ruleIndex = false) is a pure perf baseline — status,
 * states, transitions, per-rule fire digests, invariant-check counts,
 * traces and walker picks are bit-identical either way. guardEvals is
 * deliberately NOT compared: it counts PHYSICAL evaluations, so the
 * on/off difference (and, in the parallel explorer, run-to-run
 * jitter from racy frontier interning) is the index working.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "verif/explorer.hpp"
#include "verif/models/german.hpp"
#include "verif/models/mutants.hpp"
#include "verif/random_walk.hpp"
#include "verif/state_ring.hpp"
#include "verif/transition_system.hpp"

using namespace neo;

namespace
{

std::uint16_t
v16(std::size_t x)
{
    return static_cast<std::uint16_t>(x);
}

GuardTerm
geq(std::size_t var, std::uint8_t imm)
{
    return GuardTerm{v16(var), GuardTerm::Op::Eq, imm};
}

EffectTerm
eset(std::size_t dst, std::uint8_t imm)
{
    return EffectTerm{v16(dst), EffectTerm::Op::Set, 0, imm};
}

/** FNV-1a over the per-rule fire counts (same digest the golden
 *  fixpoint fixtures pin). */
std::uint64_t
firesDigest(const std::vector<std::uint64_t> &fires)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t x : fires) {
        for (int b = 0; b < 8; ++b) {
            h ^= (x >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

// ---------------------------------------------------------------------
// RuleDepIndex construction.
// ---------------------------------------------------------------------

/** Three flat rules over {x, y, z}:
 *    incX: guard x==0, effect x:=1        (reads {x}, writes {x})
 *    onX : guard x==1, effect y:=1        (reads {x}, writes {y})
 *    onY : guard y==1, effect z:=1        (reads {y}, writes {z}) */
TransitionSystem
flatToy()
{
    TransitionSystem ts;
    const auto x = ts.addVar("x", 0);
    const auto y = ts.addVar("y", 0);
    ts.addVar("z", 0);
    ts.addRule("incX", ActionKind::Internal, {geq(x, 0)},
               {eset(x, 1)});
    ts.addRule("onX", ActionKind::Internal, {geq(x, 1)},
               {eset(y, 1)});
    ts.addRule("onY", ActionKind::Internal, {geq(y, 1)},
               {eset(2, 1)});
    return ts;
}

TEST(RuleDepIndex, FlatRulesGetExactSets)
{
    const TransitionSystem ts = flatToy();
    const RuleDepIndex idx(ts);
    ASSERT_EQ(idx.numRules(), 3u);

    // incX writes x: re-evaluate the readers of x (incX, onX) only.
    EXPECT_TRUE(idx.ruleAffectsRule(0, 0));
    EXPECT_TRUE(idx.ruleAffectsRule(0, 1));
    EXPECT_FALSE(idx.ruleAffectsRule(0, 2));
    EXPECT_EQ(idx.affectedRuleCount(0), 2u);

    // onX writes y: only onY reads y.
    EXPECT_FALSE(idx.ruleAffectsRule(1, 0));
    EXPECT_FALSE(idx.ruleAffectsRule(1, 1));
    EXPECT_TRUE(idx.ruleAffectsRule(1, 2));
    EXPECT_EQ(idx.affectedRuleCount(1), 1u);

    // onY writes z: nobody reads z.
    EXPECT_EQ(idx.affectedRuleCount(2), 0u);

    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_FALSE(idx.readSetUnknown(r));
        EXPECT_FALSE(idx.writeSetUnknown(r));
    }
}

TEST(RuleDepIndex, LambdaGuardIsConservativeUntilDeclared)
{
    TransitionSystem ts = flatToy();
    const auto w = ts.addVar("w", 0);
    // Lambda guard, no declared reads: must be re-evaluated after
    // EVERY firing — it lands in every rule's affected set.
    ts.addRule(
        "opaque", ActionKind::Internal,
        TransitionSystem::Guard(
            [w](const VState &s) { return s[w] == 0; }),
        {eset(w, 1)});
    {
        const RuleDepIndex idx(ts);
        EXPECT_TRUE(idx.readSetUnknown(3));
        for (std::size_t r = 0; r < idx.numRules(); ++r)
            EXPECT_TRUE(idx.ruleAffectsRule(r, 3))
                << "rule " << r << " must affect the opaque guard";
        // The flat rules' sets are unchanged by the opaque PEER
        // (read-unknown pollutes column 3, not their rows' width).
        EXPECT_FALSE(idx.ruleAffectsRule(1, 0));
    }
    // Declaring the exact read-set shrinks it back: only writers of
    // w re-enable it.
    ts.declareGuardReads("opaque", {v16(w)});
    {
        const RuleDepIndex idx(ts);
        EXPECT_FALSE(idx.readSetUnknown(3));
        EXPECT_FALSE(idx.ruleAffectsRule(0, 3)); // incX writes x
        EXPECT_TRUE(idx.ruleAffectsRule(3, 3));  // opaque writes w
    }
}

TEST(RuleDepIndex, LambdaEffectInvalidatesEverything)
{
    TransitionSystem ts = flatToy();
    const auto w = ts.addVar("w", 0);
    ts.addRule(
        "opaqueEff", ActionKind::Internal,
        TransitionSystem::Guard(
            [w](const VState &s) { return s[w] == 0; }),
        TransitionSystem::Effect([w](VState &s) { s[w] = 1; }));
    ts.declareGuardReads("opaqueEff", {v16(w)});
    const RuleDepIndex idx(ts);
    EXPECT_TRUE(idx.writeSetUnknown(3));
    EXPECT_FALSE(idx.readSetUnknown(3)); // reads are declared
    // Unknown write-set: conservatively re-evaluate every guard and
    // every invariant after it fires.
    EXPECT_EQ(idx.affectedRuleCount(3), idx.numRules());
}

TEST(RuleDepIndex, OverrideGuardDropsDeclaredReads)
{
    TransitionSystem ts = flatToy();
    const auto x = 0;
    // Mutant-style surgical rewrite: overrideGuard must clear both
    // the flat terms and any declared read-set, reverting the rule
    // to read-unknown (the index must not reason about the
    // pre-mutation guard).
    TransitionSystem::Rule *r = ts.findRule("onX");
    ASSERT_NE(r, nullptr);
    r->overrideGuard([x](const VState &s) { return s[x] == 1; });
    const RuleDepIndex idx(ts);
    EXPECT_TRUE(idx.readSetUnknown(1));
    for (std::size_t q = 0; q < idx.numRules(); ++q)
        EXPECT_TRUE(idx.ruleAffectsRule(q, 1));
}

TEST(RuleDepIndex, OverrideEffectDropsFlatWrites)
{
    TransitionSystem ts = flatToy();
    TransitionSystem::Rule *r = ts.findRule("onY");
    ASSERT_NE(r, nullptr);
    r->overrideEffect([](VState &s) { s[2] = 1; });
    const RuleDepIndex idx(ts);
    EXPECT_TRUE(idx.writeSetUnknown(2));
    EXPECT_EQ(idx.affectedRuleCount(2), idx.numRules());
}

TEST(RuleDepIndex, InvariantReadSets)
{
    TransitionSystem ts = flatToy();
    // Flat invariant over z: only writers of z re-check it.
    ts.addInvariant("zLow", {GuardTerm{2, GuardTerm::Op::Le, 1}});
    // Lambda invariant with declared reads {y}.
    ts.addInvariant(
        "yLow", [](const VState &s) { return s[1] <= 1; },
        {v16(1)});
    // Lambda invariant, no declared reads: conservative.
    ts.addInvariant("opaqueInv",
                    [](const VState &s) { return s[0] <= 1; });
    const RuleDepIndex idx(ts);
    ASSERT_EQ(idx.numInvariants(), 3u);
    // incX writes x: neither zLow nor yLow depend on x, opaqueInv
    // conservatively depends on everything.
    EXPECT_FALSE(idx.ruleAffectsInvariant(0, 0));
    EXPECT_FALSE(idx.ruleAffectsInvariant(0, 1));
    EXPECT_TRUE(idx.ruleAffectsInvariant(0, 2));
    // onX writes y -> yLow; onY writes z -> zLow.
    EXPECT_TRUE(idx.ruleAffectsInvariant(1, 1));
    EXPECT_FALSE(idx.ruleAffectsInvariant(1, 0));
    EXPECT_TRUE(idx.ruleAffectsInvariant(2, 0));
    EXPECT_FALSE(idx.ruleAffectsInvariant(2, 1));
}

TEST(RuleDepIndex, GermanAvgAffectedWellBelowFullScan)
{
    ModelShape shape;
    const TransitionSystem ts = verif::buildGermanModel(4, shape);
    const RuleDepIndex idx(ts);
    // The point of the index: a firing's delta re-evaluation must be
    // much cheaper than the full R-rule scan. (sendInv's declared
    // read-set is what keeps this below R — see german.cpp.)
    EXPECT_LT(idx.avgAffectedRules(),
              0.8 * double(idx.numRules()));
    for (std::size_t r = 0; r < idx.numRules(); ++r)
        EXPECT_FALSE(idx.writeSetUnknown(r));
}

// ---------------------------------------------------------------------
// Differential: index on == index off, everywhere.
// ---------------------------------------------------------------------

struct Fix
{
    VerifStatus status;
    std::uint64_t states, transitions, invChecks, digest, traceLen;
    std::string violated;
};

Fix
runFix(const TransitionSystem &ts, bool index, unsigned threads = 1,
       StoreTierOptions store = {})
{
    ExploreLimits lim;
    lim.maxSeconds = 300.0;
    lim.threads = threads;
    lim.ruleIndex = index;
    lim.store = store;
    const ExploreResult r = explore(ts, lim, false, threads == 1);
    return Fix{r.status,           r.statesExplored,
               r.transitionsFired, r.invariantChecks,
               firesDigest(r.ruleFires), r.trace.size(),
               r.violatedInvariant};
}

void
expectSameFix(const Fix &on, const Fix &off, const std::string &what)
{
    EXPECT_EQ(int(on.status), int(off.status)) << what;
    EXPECT_EQ(on.states, off.states) << what;
    EXPECT_EQ(on.transitions, off.transitions) << what;
    EXPECT_EQ(on.invChecks, off.invChecks) << what;
    EXPECT_EQ(on.digest, off.digest) << what;
    EXPECT_EQ(on.violated, off.violated) << what;
    EXPECT_EQ(on.traceLen, off.traceLen) << what;
}

class IndexDifferential
    : public ::testing::TestWithParam<std::string>
{
  protected:
    TransitionSystem
    build() const
    {
        ModelShape shape;
        const std::string &name = GetParam();
        if (name.rfind("mutant:", 0) == 0) {
            const verif::Mutant *m = verif::findMutant(
                name.substr(std::string("mutant:").size()));
            EXPECT_NE(m, nullptr) << name;
            return m->build(shape);
        }
        if (name.rfind("german_n", 0) == 0)
            return verif::buildGermanModel(
                std::stoul(name.substr(8)), shape);
        for (const verif::BundledModel &m : verif::bundledModels())
            if (m.name == name)
                return m.build(shape);
        ADD_FAILURE() << "unknown model " << name;
        return TransitionSystem{};
    }
};

TEST_P(IndexDifferential, SequentialFixpointIdentical)
{
    const TransitionSystem ts = build();
    expectSameFix(runFix(ts, true), runFix(ts, false), GetParam());
}

TEST_P(IndexDifferential, WalkerOutcomeIdentical)
{
    const TransitionSystem ts = build();
    WalkOptions opt;
    opt.walks = 64;
    opt.depth = 256;
    opt.seed = 1;
    opt.ruleIndex = true;
    const WalkResult on = walkExplore(ts, opt);
    opt.ruleIndex = false;
    const WalkResult off = walkExplore(ts, opt);
    // Same picks, same traces, same verdicts — bit for bit.
    EXPECT_EQ(int(on.status), int(off.status)) << GetParam();
    EXPECT_EQ(on.stepsTaken, off.stepsTaken) << GetParam();
    EXPECT_EQ(on.deadEnds, off.deadEnds) << GetParam();
    EXPECT_EQ(on.walkIndex, off.walkIndex) << GetParam();
    EXPECT_EQ(on.trace, off.trace) << GetParam();
    EXPECT_EQ(on.violatedInvariant, off.violatedInvariant)
        << GetParam();
    // No skip-count assertion here: corpus mutants rewritten via
    // overrideEffect are write-unknown, so their delta legitimately
    // re-evaluates every guard (see WalkerSkipsOnCleanModel).
}

TEST(WalkerCounters, WalkerSkipsOnCleanModel)
{
    ModelShape shape;
    const TransitionSystem ts = verif::buildGermanModel(4, shape);
    WalkOptions opt;
    opt.walks = 32;
    opt.depth = 512;
    opt.seed = 3;
    const WalkResult on = walkExplore(ts, opt);
    ASSERT_GT(on.stepsTaken, 0u);
    EXPECT_GT(on.guardEvalsSkipped, 0u);
    EXPECT_GT(on.canonIdentityHits, 0u);
    opt.ruleIndex = false;
    const WalkResult off = walkExplore(ts, opt);
    EXPECT_EQ(off.guardEvalsSkipped, 0u);
    EXPECT_EQ(off.canonIdentityHits, 0u);
    EXPECT_LT(on.guardEvals, off.guardEvals);
}

std::vector<std::string>
differentialModels()
{
    std::vector<std::string> names;
    for (const verif::BundledModel &m : verif::bundledModels())
        names.push_back(m.name);
    names.push_back("german_n4");
    for (const verif::Mutant &m : verif::mutantRegistry())
        names.push_back("mutant:" + m.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAndMutants, IndexDifferential,
    ::testing::ValuesIn(differentialModels()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == ':' || c == '.' || c == '-')
                c = '_';
        return n;
    });

TEST(IndexDifferentialParallel, GermanThreadsAgree)
{
    ModelShape shape;
    const TransitionSystem ts = verif::buildGermanModel(4, shape);
    const Fix seqOn = runFix(ts, true);
    for (unsigned threads : {2u, 4u}) {
        expectSameFix(runFix(ts, true, threads), seqOn,
                      "threads=" + std::to_string(threads) + " on");
        expectSameFix(runFix(ts, false, threads), seqOn,
                      "threads=" + std::to_string(threads) + " off");
    }
}

TEST(IndexDifferentialTiers, DeltaAndCompactAgree)
{
    ModelShape shape;
    const TransitionSystem ts = verif::buildGermanModel(4, shape);
    const Fix plain = runFix(ts, true);

    StoreTierOptions delta;
    delta.tier = StoreTier::Delta;
    StoreTierOptions compact;
    compact.tier = StoreTier::Compact;
    for (bool index : {true, false}) {
        expectSameFix(runFix(ts, index, 1, delta), plain, "delta");
        expectSameFix(runFix(ts, index, 1, compact), plain,
                      "compact");
    }

    // The delta tier interns against the pristine parent bytes, so
    // in-place firing is disabled there — the counter must say so.
    ExploreLimits lim;
    lim.maxSeconds = 300.0;
    lim.store = delta;
    const ExploreResult r = explore(ts, lim, false, false);
    EXPECT_EQ(r.inPlaceFirings, 0u);
    EXPECT_GT(r.guardEvalsSkipped, 0u); // bitset delta still on
}

// ---------------------------------------------------------------------
// Counters and the identity gate.
// ---------------------------------------------------------------------

TEST(IndexCounters, OnPathCountsOffPathZeros)
{
    ModelShape shape;
    const TransitionSystem ts = verif::buildGermanModel(4, shape);

    ExploreLimits lim;
    lim.maxSeconds = 300.0;
    const ExploreResult on = explore(ts, lim, false, false);
    EXPECT_GT(on.guardEvals, 0u);
    EXPECT_GT(on.guardEvalsSkipped, 0u);
    EXPECT_GT(on.inPlaceFirings, 0u);
    EXPECT_GT(on.canonIdentityHits, 0u);

    lim.ruleIndex = false;
    const ExploreResult off = explore(ts, lim, false, false);
    // Off: every expanded state pays the full R-rule scan...
    EXPECT_EQ(off.guardEvals,
              off.statesExplored * ts.rules().size());
    // ...and none of the index machinery runs.
    EXPECT_EQ(off.guardEvalsSkipped, 0u);
    EXPECT_EQ(off.inPlaceFirings, 0u);
    EXPECT_EQ(off.canonIdentityHits, 0u);
    // The index never evaluates MORE guards than the full scan.
    EXPECT_LT(on.guardEvals, off.guardEvals);
    EXPECT_EQ(on.guardEvals + on.guardEvalsSkipped, off.guardEvals);
}

/** Two symmetric one-var leaves with a sort canonicalizer but NO
 *  exactness predicate: the engines must fall back to the
 *  copy-canonicalize-compare identity test, stay bit-identical, and
 *  still score identity hits (plus genuine misses — the toy swaps
 *  blocks on some firings). */
TransitionSystem
permutingToy(bool withCheck)
{
    TransitionSystem ts;
    const auto a = ts.addVar("a", 0);
    const auto b = ts.addVar("b", 0);
    for (std::uint8_t v = 0; v < 3; ++v) {
        ts.addRule("bumpA" + std::to_string(v),
                   ActionKind::Internal, {geq(a, v)},
                   {eset(a, std::uint8_t(v + 1))});
        ts.addRule("bumpB" + std::to_string(v),
                   ActionKind::Internal, {geq(b, v)},
                   {eset(b, std::uint8_t(v + 1))});
    }
    TransitionSystem::Canonicalizer canon = [](VState &s) {
        if (s[0] > s[1])
            std::swap(s[0], s[1]);
    };
    if (withCheck) {
        ts.setCanonicalizer(canon, [](const VState &s) {
            return s[0] <= s[1];
        });
    } else {
        ts.setCanonicalizer(canon);
    }
    ts.addInvariant("bounded",
                    {GuardTerm{0, GuardTerm::Op::Le, 3},
                     GuardTerm{1, GuardTerm::Op::Le, 3}});
    return ts;
}

TEST(IdentityGate, FallbackCompareMatchesPredicate)
{
    ExploreLimits lim;
    lim.maxSeconds = 60.0;
    const ExploreResult pred =
        explore(permutingToy(true), lim, false, false);
    const ExploreResult cmp =
        explore(permutingToy(false), lim, false, false);
    lim.ruleIndex = false;
    const ExploreResult off =
        explore(permutingToy(false), lim, false, false);

    // Same fixpoint all three ways.
    EXPECT_EQ(pred.statesExplored, off.statesExplored);
    EXPECT_EQ(cmp.statesExplored, off.statesExplored);
    EXPECT_EQ(cmp.transitionsFired, off.transitionsFired);
    EXPECT_EQ(cmp.invariantChecks, off.invariantChecks);
    EXPECT_EQ(firesDigest(cmp.ruleFires),
              firesDigest(off.ruleFires));

    // The fallback and the predicate agree on what "identity" is.
    EXPECT_EQ(cmp.canonIdentityHits, pred.canonIdentityHits);
    // This toy genuinely permutes sometimes: hits < transitions.
    EXPECT_GT(cmp.canonIdentityHits, 0u);
    EXPECT_LT(cmp.canonIdentityHits, cmp.transitionsFired);
}

// ---------------------------------------------------------------------
// StateRing (compact-tier frontier).
// ---------------------------------------------------------------------

TEST(StateRing, PushPopWraparound)
{
    StateRing ring(3);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.stride(), 3u);

    // Push enough through a small ring that head wraps several
    // times; FIFO order and contents must survive.
    std::uint8_t buf[3];
    for (int i = 0; i < 300; ++i) {
        buf[0] = std::uint8_t(i);
        buf[1] = std::uint8_t(i >> 8);
        buf[2] = 0xab;
        ring.push_back(buf);
        if (i % 3 == 2) { // drain one per three pushed
            const std::uint8_t *f = ring.front();
            const int expect = i / 3;
            EXPECT_EQ(f[0], std::uint8_t(expect));
            EXPECT_EQ(f[2], 0xab);
            ring.pop_front();
        }
    }
    EXPECT_EQ(ring.size(), 200u);
    // at() indexes from the front in FIFO order.
    EXPECT_EQ(ring.at(0)[0], ring.front()[0]);
    EXPECT_EQ(ring.at(199)[0], std::uint8_t(299));
    EXPECT_GT(ring.memoryBytes(), 200u * 3u);
}

TEST(StateRing, PushFrontReinsertsAtHead)
{
    StateRing ring(2);
    const std::uint8_t a[2] = {1, 1}, b[2] = {2, 2},
                       c[2] = {3, 3};
    ring.push_back(a);
    ring.push_back(b);
    ring.pop_front();
    // Compact-tier rebuild path: a state popped for expansion is
    // pushed back to the FRONT when expansion must be retried.
    ring.push_front(c);
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.front()[0], 3);
    EXPECT_EQ(ring.at(1)[0], 2);
}

TEST(StateRing, GrowthPreservesOrderAcrossWrap)
{
    StateRing ring(1);
    std::uint8_t v;
    // Interleave pushes and pops so head is mid-buffer when growth
    // copies the live range out of the wrapped layout.
    for (v = 0; v < 40; ++v)
        ring.push_back(&v);
    for (int i = 0; i < 30; ++i)
        ring.pop_front();
    for (v = 40; v < 200; ++v)
        ring.push_back(&v); // forces at least one grow
    ASSERT_EQ(ring.size(), 170u);
    for (std::size_t i = 0; i < 170; ++i)
        EXPECT_EQ(ring.at(i)[0], std::uint8_t(30 + i));
}

} // namespace
