/**
 * @file
 * Crash-only contract tests for the verification service.
 *
 * The load-bearing properties are DIFFERENTIAL and EXACTLY-ONCE:
 *
 *  - A 4-worker service run of a model — including one whose worker is
 *    SIGKILLed mid-exploration and recovers by resharding the last
 *    coordinated checkpoint onto the survivors — must report the exact
 *    states/transitions/invariant-check counts of an undisturbed
 *    sequential run.
 *
 *  - A coordinator SIGKILLed mid-journal-append must, on restart,
 *    replay the journal and finish every acknowledged job exactly
 *    once: no job lost, no job run to DONE twice.
 *
 *  - A poison job (deterministic worker crash via fault injection)
 *    must converge to quarantine after the retry limit and surface the
 *    dedicated exit code, never wedge the queue.
 *
 * Below those sit unit tests for the crash-only building blocks: the
 * CRC-guarded journal (torn tails truncated, corruption never parsed),
 * the frame codec (corruption latches), EINTR-hardened I/O under a
 * deliberately hostile interval timer, stale-tmp reaping, and the
 * duration-literal CLI parser.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/cli_parse.hpp"
#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "verif/checkpoint.hpp"
#include "verif/explorer.hpp"
#include "verif/models/german.hpp"
#include "verif/parametric.hpp"
#include "verif/service/job_queue.hpp"
#include "verif/service/wire.hpp"

using namespace neo;
using namespace neo::verif;
namespace fs = std::filesystem;

namespace
{

std::string
tempDir(const std::string &tag)
{
    std::string tmpl =
        (fs::temp_directory_path() / (tag + ".XXXXXX")).string();
    char *p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    return tmpl;
}

struct DirGuard
{
    std::string path;
    explicit DirGuard(std::string p) : path(std::move(p)) {}
    ~DirGuard()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

// ---------------------------------------------------------------
// Journal
// ---------------------------------------------------------------

TEST(JobJournal, RoundtripsRecordsInOrder)
{
    DirGuard d(tempDir("neoj"));
    const std::string path = d.path + "/j.neoj";
    {
        JobJournal j;
        std::string err;
        ASSERT_TRUE(j.open(path, err)) << err;
        for (std::uint8_t t = 1; t <= 5; ++t) {
            SnapshotWriter w;
            w.putU64(t * 100);
            ASSERT_TRUE(j.append(t, w.take()));
        }
    }
    JobJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path, err)) << err;
    std::vector<std::pair<std::uint8_t, std::uint64_t>> seen;
    ASSERT_TRUE(j.replay(
        [&](std::uint8_t type, SnapshotReader &r) {
            seen.emplace_back(type, r.getU64());
        },
        err))
        << err;
    ASSERT_EQ(seen.size(), 5u);
    for (std::uint8_t t = 1; t <= 5; ++t) {
        EXPECT_EQ(seen[t - 1].first, t);
        EXPECT_EQ(seen[t - 1].second, t * 100u);
    }
}

TEST(JobJournal, TruncatesTornTailAndKeepsAppending)
{
    DirGuard d(tempDir("neoj"));
    const std::string path = d.path + "/j.neoj";
    {
        JobJournal j;
        std::string err;
        ASSERT_TRUE(j.open(path, err)) << err;
        SnapshotWriter w;
        w.putU64(1);
        ASSERT_TRUE(j.append(1, w.take()));
        SnapshotWriter w2;
        w2.putU64(2);
        ASSERT_TRUE(j.append(2, w2.take()));
    }
    // Simulate a mid-append SIGKILL: a few garbage bytes that look
    // like the start of a record but end before its payload does.
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        const std::uint32_t bogusLen = 64;
        f.write(reinterpret_cast<const char *>(&bogusLen), 4);
        f.write("\xde\xad\xbe", 3);
    }
    const auto tornSize = fs::file_size(path);
    JobJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path, err)) << err;
    int records = 0;
    ASSERT_TRUE(j.replay(
        [&](std::uint8_t, SnapshotReader &) { ++records; }, err))
        << err;
    EXPECT_EQ(records, 2);
    EXPECT_LT(fs::file_size(path), tornSize); // tail truncated away
    // The log must extend cleanly after truncation.
    SnapshotWriter w;
    w.putU64(3);
    ASSERT_TRUE(j.append(3, w.take()));
    JobJournal j2;
    ASSERT_TRUE(j2.open(path, err)) << err;
    records = 0;
    ASSERT_TRUE(j2.replay(
        [&](std::uint8_t, SnapshotReader &) { ++records; }, err));
    EXPECT_EQ(records, 3);
}

TEST(JobJournal, CrcCorruptionCutsTheLogThere)
{
    DirGuard d(tempDir("neoj"));
    const std::string path = d.path + "/j.neoj";
    std::vector<std::size_t> offsets; // start of each record
    {
        JobJournal j;
        std::string err;
        ASSERT_TRUE(j.open(path, err)) << err;
        for (int i = 0; i < 3; ++i) {
            offsets.push_back(fs::file_size(path));
            SnapshotWriter w;
            w.putU64(static_cast<std::uint64_t>(i));
            ASSERT_TRUE(j.append(1, w.take()));
        }
    }
    // Flip one payload byte of the middle record.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(offsets[1] + 9));
        char b;
        f.seekg(static_cast<std::streamoff>(offsets[1] + 9));
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x40);
        f.seekp(static_cast<std::streamoff>(offsets[1] + 9));
        f.write(&b, 1);
    }
    JobJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path, err)) << err;
    int records = 0;
    ASSERT_TRUE(j.replay(
        [&](std::uint8_t, SnapshotReader &) { ++records; }, err));
    // Only the intact prefix survives; the corrupt record and
    // everything after it are gone (crash-only: trust nothing past
    // the first bad CRC).
    EXPECT_EQ(records, 1);
}

TEST(JobQueue, RetryBackoffAndQuarantine)
{
    DirGuard d(tempDir("neoq"));
    JobQueue q(3, 10.0);
    std::string err;
    ASSERT_TRUE(q.open(d.path + "/j.neoj", 0.0, err)) << err;
    JobSpec spec;
    const std::uint64_t id = q.submit(spec);
    Job *job = q.find(id);
    ASSERT_NE(job, nullptr);

    ASSERT_EQ(q.runnable(1.0), job);
    q.markStarted(*job, 4);
    EXPECT_EQ(job->state, JobState::Running);
    EXPECT_EQ(q.runnable(1.0), nullptr);

    q.failAttempt(*job, "worker died", 3, 1.0);
    EXPECT_EQ(job->state, JobState::Pending);
    EXPECT_EQ(job->nextWorkers, 3u);
    // Exponential backoff: not runnable until the delay passes.
    EXPECT_EQ(q.runnable(2.0), nullptr);
    EXPECT_EQ(q.runnable(12.0), job);

    q.markStarted(*job, 3);
    q.failAttempt(*job, "worker died", 2, 20.0);
    q.markStarted(*job, 2);
    q.failAttempt(*job, "worker died", 1, 60.0);
    // Third failure hits the retry limit: quarantined, never runnable.
    EXPECT_EQ(job->state, JobState::Quarantined);
    EXPECT_EQ(q.runnable(1e9), nullptr);
    EXPECT_TRUE(q.allTerminal());
}

TEST(JobQueue, ReplayResolvesUnmatchedStartAsFailedAttempt)
{
    DirGuard d(tempDir("neoq"));
    const std::string path = d.path + "/j.neoj";
    std::uint64_t id = 0;
    {
        JobQueue q(3, 0.0);
        std::string err;
        ASSERT_TRUE(q.open(path, 0.0, err)) << err;
        JobSpec spec;
        id = q.submit(spec);
        q.markStarted(*q.find(id), 4);
        // Coordinator "dies" here: START journaled, no DONE/FAIL.
    }
    JobQueue q(3, 0.0);
    std::string err;
    ASSERT_TRUE(q.open(path, 100.0, err)) << err;
    Job *job = q.find(id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, JobState::Pending); // lost attempt = failed
    EXPECT_EQ(job->attempts, 1u);
    EXPECT_NE(q.runnable(200.0), nullptr);
}

TEST(JobQueue, ReplayQuarantinesACoordinatorCrashLoop)
{
    DirGuard d(tempDir("neoq"));
    const std::string path = d.path + "/j.neoj";
    std::uint64_t id = 0;
    // A job whose attempt SIGKILLs the coordinator itself: each
    // restart replays an unmatched START. After the retry limit the
    // queue must quarantine it instead of wedging forever.
    for (int round = 0; round < 3; ++round) {
        JobQueue q(3, 0.0);
        std::string err;
        ASSERT_TRUE(q.open(path, 0.0, err)) << err;
        if (round == 0) {
            JobSpec spec;
            id = q.submit(spec);
        }
        Job *job = q.find(id);
        ASSERT_NE(job, nullptr);
        ASSERT_EQ(job->state, JobState::Pending);
        q.markStarted(*job, 2);
    }
    JobQueue q(3, 0.0);
    std::string err;
    ASSERT_TRUE(q.open(path, 0.0, err)) << err;
    EXPECT_EQ(q.find(id)->state, JobState::Quarantined);
}

TEST(JobQueue, CancelIsJournalFirstAndSurvivesReplay)
{
    DirGuard d(tempDir("neoq"));
    const std::string path = d.path + "/j.neoj";
    std::uint64_t id = 0;
    {
        JobQueue q(3, 0.0);
        std::string err;
        ASSERT_TRUE(q.open(path, 0.0, err)) << err;
        JobSpec spec;
        id = q.submit(spec);
        q.markStarted(*q.find(id), 2);
        ASSERT_TRUE(q.cancel(id));
        // Crash between the CANCEL record and the worker kill.
    }
    JobQueue q(3, 0.0);
    std::string err;
    ASSERT_TRUE(q.open(path, 0.0, err)) << err;
    // Replay must resolve to Cancelled, never to a retried attempt.
    EXPECT_EQ(q.find(id)->state, JobState::Cancelled);
    EXPECT_FALSE(q.cancel(id)); // terminal: not cancellable again
}

// ---------------------------------------------------------------
// Journal compaction + group commit
// ---------------------------------------------------------------

/** Drive identical mutation histories into two queues. */
void
driveHistory(JobQueue &q, bool compactMidway)
{
    JobSpec big;
    big.features = "german";
    big.n = 5;
    JobSpec small;
    small.features = "msi";
    small.system = "closed";
    small.n = 2;
    small.workers = 2;
    const std::uint64_t j1 = q.submit(big);
    const std::uint64_t j2 = q.submit(small);
    const std::uint64_t j3 = q.submit(big);
    const std::uint64_t j4 = q.submit(small);

    q.markStarted(*q.find(j1), 4);
    CkptManifest m;
    m.epoch = 3;
    m.parts = 4;
    m.states = 1000;
    m.transitions = 9000;
    m.invariantChecks = 5000;
    m.seconds = 1.5;
    q.recordCheckpoint(*q.find(j1), m);
    q.failAttempt(*q.find(j1), "worker died", 3, 10.0);

    if (compactMidway)
        q.compactNow();

    q.markStarted(*q.find(j2), 2);
    JobResult res;
    res.statusCode = 1; // Verified
    res.states = 4321;
    res.transitions = 87654;
    res.invariantChecks = 13000;
    res.seconds = 0.25;
    res.detail = "fixpoint";
    q.markDone(*q.find(j2), res);
    q.cancel(j3);
    q.markStarted(*q.find(j4), 2);

    if (compactMidway)
        q.compactNow();
}

void
expectSameJobTable(JobQueue &a, JobQueue &b)
{
    ASSERT_EQ(a.jobs().size(), b.jobs().size());
    for (const auto &[id, ja] : a.jobs()) {
        const Job *jb = b.find(id);
        ASSERT_NE(jb, nullptr) << "job " << id << " lost";
        EXPECT_EQ(ja.state, jb->state) << "job " << id;
        EXPECT_EQ(ja.attempts, jb->attempts) << "job " << id;
        EXPECT_EQ(ja.nextWorkers, jb->nextWorkers) << "job " << id;
        EXPECT_EQ(ja.spec.summary(), jb->spec.summary());
        EXPECT_EQ(ja.spec.workers, jb->spec.workers);
        EXPECT_EQ(ja.ckpt.epoch, jb->ckpt.epoch);
        EXPECT_EQ(ja.ckpt.parts, jb->ckpt.parts);
        EXPECT_EQ(ja.ckpt.states, jb->ckpt.states);
        EXPECT_EQ(ja.ckpt.transitions, jb->ckpt.transitions);
        EXPECT_EQ(ja.result.statusCode, jb->result.statusCode);
        EXPECT_EQ(ja.result.states, jb->result.states);
        EXPECT_EQ(ja.result.transitions, jb->result.transitions);
        EXPECT_EQ(ja.result.detail, jb->result.detail);
        EXPECT_EQ(ja.lastFailure, jb->lastFailure);
    }
    EXPECT_EQ(a.maxEpochSeen(), b.maxEpochSeen());
}

TEST(JobQueue, CompactionPreservesReplayEquivalence)
{
    DirGuard d(tempDir("neoc"));
    const std::string pathA = d.path + "/a.neoj";
    const std::string pathB = d.path + "/b.neoj";
    {
        JobQueue a(3, 10.0), b(3, 10.0);
        std::string err;
        ASSERT_TRUE(a.open(pathA, 0.0, err)) << err;
        ASSERT_TRUE(b.open(pathB, 0.0, err)) << err;
        driveHistory(a, /*compactMidway=*/true);
        driveHistory(b, /*compactMidway=*/false);
    }
    // The differential heart: a queue replayed from the compacted
    // journal must be indistinguishable from one replayed from the
    // full record-by-record history — including the resolution of
    // job 4's unmatched START into a failed attempt.
    JobQueue a(3, 10.0), b(3, 10.0);
    std::string err;
    ASSERT_TRUE(a.open(pathA, 100.0, err)) << err;
    ASSERT_TRUE(b.open(pathB, 100.0, err)) << err;
    expectSameJobTable(a, b);
}

TEST(JobQueue, SizeTriggeredCompactionBoundsTheJournal)
{
    DirGuard d(tempDir("neoc"));
    JobQueue q(1000000, 0.0);
    std::string err;
    ASSERT_TRUE(q.open(d.path + "/j.neoj", 0.0, err)) << err;
    q.setGroupCommit(true);
    q.setCompactionThreshold(16 * 1024);
    JobSpec spec;
    const std::uint64_t id = q.submit(spec);
    // A start/fail loop appends forever; the snapshot it folds into
    // stays one job big, so the journal must stay near the threshold
    // instead of growing without bound.
    for (int i = 0; i < 2000; ++i) {
        q.markStarted(*q.find(id), 2);
        q.failAttempt(*q.find(id), "kaboom", 2, 0.0);
        q.commit();
    }
    EXPECT_LT(q.journalBytes(), 64u * 1024u);
    // And what survives is still the truth.
    JobQueue q2(1000000, 0.0);
    ASSERT_TRUE(q2.open(d.path + "/j.neoj", 0.0, err)) << err;
    Job *job = q2.find(id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->attempts, 2000u);
}

TEST(JobJournal, GroupCommitFlushesABurstAndReplaysAllOfIt)
{
    DirGuard d(tempDir("neog"));
    const std::string path = d.path + "/j.neoj";
    {
        JobJournal j;
        std::string err;
        ASSERT_TRUE(j.open(path, err)) << err;
        for (int i = 0; i < 100; ++i) {
            SnapshotWriter w;
            w.putU64(static_cast<std::uint64_t>(i));
            ASSERT_TRUE(j.append(1, w.take(), /*sync=*/false));
        }
        ASSERT_TRUE(j.sync()); // one fsync covers the burst
    }
    JobJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path, err)) << err;
    std::uint64_t expect = 0;
    ASSERT_TRUE(j.replay(
        [&](std::uint8_t, SnapshotReader &r) {
            EXPECT_EQ(r.getU64(), expect++);
        },
        err))
        << err;
    EXPECT_EQ(expect, 100u);
}

// ---------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------

TEST(Wire, FrameRoundtripThroughDribbledBytes)
{
    SnapshotWriter w;
    w.putU64(0xfeedface);
    putString(w, "hello");
    const auto body = w.take();
    const auto f1 = encodeFrame(MsgType::ReqSubmit, body);
    const auto f2 = encodeFrame(MsgType::Ping, {});

    std::vector<std::uint8_t> stream(f1);
    stream.insert(stream.end(), f2.begin(), f2.end());

    // Feed one byte at a time: framing must be purely incremental.
    FrameReader r;
    std::vector<std::pair<MsgType, std::vector<std::uint8_t>>> got;
    MsgType type;
    std::vector<std::uint8_t> out;
    for (const std::uint8_t b : stream) {
        r.feed(&b, 1);
        while (r.next(type, out))
            got.emplace_back(type, out);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].first, MsgType::ReqSubmit);
    EXPECT_EQ(got[0].second, body);
    EXPECT_EQ(got[1].first, MsgType::Ping);
    EXPECT_TRUE(got[1].second.empty());
    EXPECT_FALSE(r.corrupt());
}

TEST(Wire, CorruptionLatchesTheReader)
{
    SnapshotWriter w;
    w.putU64(42);
    auto frame = encodeFrame(MsgType::Pong, w.take());
    frame[10] ^= 0x01; // flip a payload bit: CRC must catch it
    FrameReader r;
    r.feed(frame.data(), frame.size());
    MsgType type;
    std::vector<std::uint8_t> body;
    EXPECT_FALSE(r.next(type, body));
    EXPECT_TRUE(r.corrupt());
    // Even a pristine frame afterwards must not parse: framing is
    // lost for good once the stream lied.
    const auto fine = encodeFrame(MsgType::Pong, {});
    r.feed(fine.data(), fine.size());
    EXPECT_FALSE(r.next(type, body));
}

TEST(Wire, InsaneLengthFieldIsCorruptionNotAllocation)
{
    std::vector<std::uint8_t> bogus(8, 0xff); // len ~ 4 GiB
    FrameReader r;
    r.feed(bogus.data(), bogus.size());
    MsgType type;
    std::vector<std::uint8_t> body;
    EXPECT_FALSE(r.next(type, body));
    EXPECT_TRUE(r.corrupt());
}

TEST(Wire, OversizedStringLengthFailsTheWholeRecord)
{
    // A string length no frame can carry must latch the reader, not
    // just yield ""; otherwise the next fields decode misaligned
    // with ok() still true and the caller accepts garbage.
    SnapshotWriter w;
    w.putU32(kMaxFrameBytes + 1); // length field beyond any frame
    w.putU64(0xdeadbeef);         // would misparse as string bytes
    const auto bytes = w.take();
    SnapshotReader r(bytes);
    EXPECT_TRUE(getString(r).empty());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.getU64(), 0u); // subsequent reads fail, not misalign
    EXPECT_FALSE(r.ok());
}

TEST(Wire, JobSpecEncodesLosslessly)
{
    JobSpec spec;
    spec.features = "german";
    spec.system = "open";
    spec.method = "none";
    spec.mutant = "dir_nonblocking_read";
    spec.n = 7;
    spec.maxStates = 123456;
    spec.maxSeconds = 9.5;
    spec.crashAfter = 42;
    SnapshotWriter w;
    spec.encode(w);
    const auto bytes = w.take();
    SnapshotReader r(bytes);
    JobSpec out;
    ASSERT_TRUE(JobSpec::decode(r, out));
    EXPECT_EQ(out.features, spec.features);
    EXPECT_EQ(out.system, spec.system);
    EXPECT_EQ(out.method, spec.method);
    EXPECT_EQ(out.mutant, spec.mutant);
    EXPECT_EQ(out.n, spec.n);
    EXPECT_EQ(out.maxStates, spec.maxStates);
    EXPECT_DOUBLE_EQ(out.maxSeconds, spec.maxSeconds);
    EXPECT_EQ(out.crashAfter, spec.crashAfter);
}

// ---------------------------------------------------------------
// Wire fuzz: mutated byte streams against the frame reader
// ---------------------------------------------------------------

struct SplitMix
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
};

TEST(WireFuzz, RandomChunkingAloneIsLossless)
{
    SplitMix rng{0xc0ffee};
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::vector<std::uint8_t>> bodies;
        std::vector<std::uint8_t> stream;
        const int nf = 1 + static_cast<int>(rng.next() % 6);
        for (int f = 0; f < nf; ++f) {
            std::vector<std::uint8_t> body(rng.next() % 300);
            for (auto &b : body)
                b = static_cast<std::uint8_t>(rng.next());
            const auto frame = encodeFrame(MsgType::Pong, body);
            stream.insert(stream.end(), frame.begin(), frame.end());
            bodies.push_back(std::move(body));
        }
        FrameReader r;
        std::size_t pos = 0, got = 0;
        MsgType type;
        std::vector<std::uint8_t> out;
        while (pos < stream.size()) {
            const std::size_t chunk = std::min<std::size_t>(
                1 + rng.next() % 97, stream.size() - pos);
            r.feed(stream.data() + pos, chunk);
            pos += chunk;
            while (r.next(type, out)) {
                ASSERT_LT(got, bodies.size());
                EXPECT_EQ(out, bodies[got]);
                ++got;
            }
        }
        EXPECT_EQ(got, bodies.size());
        EXPECT_FALSE(r.corrupt());
    }
}

TEST(WireFuzz, MutatedStreamsYieldOnlyIntactPrefixesThenLatch)
{
    // Property fuzz over the framing layer: whatever a lossy or
    // malicious link does to the byte stream — bit flips, mid-frame
    // truncation, inserted garbage, a length field pointing past any
    // sane allocation — the reader must (a) deliver every frame that
    // ends before the damage byte-for-byte intact, (b) never deliver
    // a damaged frame, and (c) once corrupt, stay corrupt even when
    // pristine frames follow. No crashes, no unbounded allocation.
    SplitMix rng{0x5eedf00d};
    for (int iter = 0; iter < 400; ++iter) {
        std::vector<std::vector<std::uint8_t>> bodies;
        std::vector<std::size_t> frameEnd;
        std::vector<std::uint8_t> stream;
        const int nf = 1 + static_cast<int>(rng.next() % 6);
        for (int f = 0; f < nf; ++f) {
            std::vector<std::uint8_t> body(rng.next() % 300);
            for (auto &b : body)
                b = static_cast<std::uint8_t>(rng.next());
            const auto frame = encodeFrame(MsgType::StatesTo, body);
            stream.insert(stream.end(), frame.begin(), frame.end());
            frameEnd.push_back(stream.size());
            bodies.push_back(std::move(body));
        }

        const std::size_t off = rng.next() % stream.size();
        const int kind = static_cast<int>(rng.next() % 4);
        switch (kind) {
        case 0: // bit flip
            stream[off] ^= static_cast<std::uint8_t>(
                1u << (rng.next() % 8));
            break;
        case 1: // truncate mid-frame (the chaos proxy's trunc fault)
            stream.resize(off);
            break;
        case 2: // inserted garbage byte
            stream.insert(
                stream.begin() + static_cast<std::ptrdiff_t>(off),
                static_cast<std::uint8_t>(rng.next()));
            break;
        default: // oversized/garbage length field
            for (std::size_t i = off;
                 i < std::min(off + 4, stream.size()); ++i)
                stream[i] = 0xff;
            break;
        }

        FrameReader r;
        std::size_t pos = 0, got = 0;
        MsgType type;
        std::vector<std::uint8_t> out;
        while (pos < stream.size()) {
            const std::size_t chunk = std::min<std::size_t>(
                1 + rng.next() % 97, stream.size() - pos);
            r.feed(stream.data() + pos, chunk);
            pos += chunk;
            while (r.next(type, out)) {
                // (a)+(b): anything yielded from before the damage
                // must be the original, bit for bit.
                if (got < frameEnd.size() && frameEnd[got] <= off) {
                    EXPECT_EQ(type, MsgType::StatesTo);
                    EXPECT_EQ(out, bodies[got]);
                }
                ++got;
            }
            if (r.corrupt())
                break;
        }
        // Every frame wholly before the damage must have come out.
        std::size_t intact = 0;
        while (intact < frameEnd.size() && frameEnd[intact] <= off)
            ++intact;
        EXPECT_GE(got, intact) << "iter " << iter;
        // (c): a latched reader ignores even a pristine frame.
        if (r.corrupt()) {
            const auto fine = encodeFrame(MsgType::Ping, {});
            r.feed(fine.data(), fine.size());
            EXPECT_FALSE(r.next(type, out));
        }
    }
}

// ---------------------------------------------------------------
// Duration literals
// ---------------------------------------------------------------

TEST(CliParse, DurationLiterals)
{
    double out = -1;
    std::string err;
    EXPECT_TRUE(parseSeconds("90", out, err));
    EXPECT_DOUBLE_EQ(out, 90.0);
    EXPECT_TRUE(parseSeconds("30s", out, err));
    EXPECT_DOUBLE_EQ(out, 30.0);
    EXPECT_TRUE(parseSeconds("5m", out, err));
    EXPECT_DOUBLE_EQ(out, 300.0);
    EXPECT_TRUE(parseSeconds("2h", out, err));
    EXPECT_DOUBLE_EQ(out, 7200.0);
    EXPECT_TRUE(parseSeconds("250ms", out, err));
    EXPECT_DOUBLE_EQ(out, 0.25);
    EXPECT_TRUE(parseSeconds("1.5h", out, err));
    EXPECT_DOUBLE_EQ(out, 5400.0);
}

TEST(CliParse, DurationRejectionIsStrict)
{
    double out;
    std::string err;
    EXPECT_FALSE(parseSeconds("", out, err));
    EXPECT_FALSE(parseSeconds("s", out, err));    // bare suffix
    EXPECT_FALSE(parseSeconds("ms", out, err));   // bare suffix
    EXPECT_FALSE(parseSeconds("5ss", out, err));  // doubled suffix
    EXPECT_FALSE(parseSeconds("5mm", out, err));
    EXPECT_FALSE(parseSeconds("5x", out, err));   // unknown suffix
    EXPECT_FALSE(parseSeconds("5 m", out, err));  // inner junk
    EXPECT_FALSE(parseSeconds("-3s", out, err));  // sign
    EXPECT_FALSE(parseSeconds("1h30m", out, err)); // compound
}

// ---------------------------------------------------------------
// EINTR hardening + stale tmp reaping
// ---------------------------------------------------------------

TEST(IoRetry, WriteFullSurvivesAHostileIntervalTimer)
{
    // A SIGALRM every 2ms with SA_RESTART deliberately OFF: every
    // blocking write into the full pipe keeps getting interrupted.
    // writeFull must still deliver every byte, in order.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    struct sigaction sa = {};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0; // no SA_RESTART: EINTR on purpose
    struct sigaction oldsa;
    ASSERT_EQ(::sigaction(SIGALRM, &sa, &oldsa), 0);
    itimerval timer = {};
    timer.it_interval.tv_usec = 2000;
    timer.it_value.tv_usec = 2000;
    itimerval oldtimer;
    ASSERT_EQ(::setitimer(ITIMER_REAL, &timer, &oldtimer), 0);

    const std::size_t total = 4 << 20; // >> pipe capacity
    std::vector<std::uint8_t> sendBuf(total);
    for (std::size_t i = 0; i < total; ++i)
        sendBuf[i] = static_cast<std::uint8_t>(i * 31 + 7);

    std::vector<std::uint8_t> recvBuf(total, 0);
    std::thread reader([&] {
        std::size_t got = 0;
        while (got < total) {
            const ssize_t r =
                readRetry(fds[0], recvBuf.data() + got, total - got);
            if (r <= 0)
                break;
            got += static_cast<std::size_t>(r);
            // Drain slowly enough that the writer blocks and eats
            // signals while waiting for space.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    EXPECT_TRUE(writeFull(fds[1], sendBuf.data(), total));
    ::close(fds[1]);
    reader.join();
    ::close(fds[0]);

    itimerval zero = {};
    ::setitimer(ITIMER_REAL, &zero, nullptr);
    ::sigaction(SIGALRM, &oldsa, nullptr);

    EXPECT_EQ(recvBuf, sendBuf);
}

TEST(IoRetry, FsyncRetrySucceedsOnARealFile)
{
    DirGuard d(tempDir("fsync"));
    const std::string path = d.path + "/f";
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeFull(fd, "hello", 5));
    EXPECT_TRUE(fsyncRetry(fd));
    ::close(fd);
}

TEST(Checkpoint, ReapsOrphanedTmpFilesOnly)
{
    DirGuard d(tempDir("reap"));
    std::ofstream(d.path + "/explore.ckpt") << "keep";
    std::ofstream(d.path + "/explore.ckpt.tmp") << "orphan";
    std::ofstream(d.path + "/walk.ckpt.tmp") << "orphan";
    std::ofstream(d.path + "/notes.txt") << "keep";
    reapStaleCheckpointTmps(d.path);
    EXPECT_TRUE(fs::exists(d.path + "/explore.ckpt"));
    EXPECT_TRUE(fs::exists(d.path + "/notes.txt"));
    EXPECT_FALSE(fs::exists(d.path + "/explore.ckpt.tmp"));
    EXPECT_FALSE(fs::exists(d.path + "/walk.ckpt.tmp"));
}

// ---------------------------------------------------------------
// End-to-end service tests against the real binary
// ---------------------------------------------------------------

#ifdef NEOVERIFY_BIN

std::vector<std::string>
splitArgs(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == ' ') {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

/** fork+exec the real binary, stdout+stderr appended to @p logPath. */
pid_t
spawnNeoverify(const std::vector<std::string> &args,
               const std::string &logPath)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const int log = ::open(logPath.c_str(),
                           O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (log >= 0) {
        ::dup2(log, 1);
        ::dup2(log, 2);
        ::close(log);
    }
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(NEOVERIFY_BIN));
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(NEOVERIFY_BIN, argv.data());
    ::_exit(127);
}

struct ServiceFixture
{
    std::string dir;
    std::string sock;
    pid_t coordinator = -1;

    explicit ServiceFixture(const std::string &extraArgs = "")
        : dir(tempDir("svc")), sock(dir + "/neo.sock")
    {
        std::vector<std::string> args = {
            "--serve",     sock,
            "--state-dir", dir + "/state",
            "--heartbeat", "100ms",
            "--backoff",   "100ms",
        };
        for (auto &a : splitArgs(extraArgs))
            args.push_back(std::move(a));
        coordinator = spawnNeoverify(args, dir + "/serve.log");
        // The coordinator is up when the socket accepts.
        for (int i = 0; i < 200; ++i) {
            std::string err;
            const int fd = connectUnix(sock, err);
            if (fd >= 0) {
                ::close(fd);
                up = true;
                break;
            }
            ::usleep(50 * 1000);
        }
        EXPECT_TRUE(up) << "coordinator never came up";
    }

    bool up = false;

    /** Run a client command; @return its exit code, filling @p out. */
    int
    client(const std::string &args, std::string &out) const
    {
        const std::string cmd = std::string(NEOVERIFY_BIN) +
                                " --sock " + sock + " " + args +
                                " 2>&1";
        FILE *p = ::popen(cmd.c_str(), "r");
        if (p == nullptr)
            return -1;
        char buf[4096];
        out.clear();
        while (std::fgets(buf, sizeof buf, p) != nullptr)
            out += buf;
        const int st = ::pclose(p);
        return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
    }

    void
    stop()
    {
        if (coordinator > 0) {
            ::kill(coordinator, SIGKILL);
            ::waitpid(coordinator, nullptr, 0);
            coordinator = -1;
        }
    }

    ~ServiceFixture() { stop(); }
};

std::uint64_t
scrapeCount(const std::string &text, const std::string &key)
{
    const auto pos = text.find(key + "=");
    if (pos == std::string::npos)
        return ~0ULL;
    return std::strtoull(text.c_str() + pos + key.size() + 1, nullptr,
                         10);
}

/** Undisturbed sequential reference for a bundled german instance. */
ExploreResult
germanReference(std::size_t n)
{
    ModelShape shape;
    TransitionSystem ts = buildGermanModel(n, shape);
    ExploreLimits lim;
    lim.maxStates = 8'000'000;
    return explore(ts, lim, false, true);
}

TEST(Service, MatchesSequentialCounts)
{
    ServiceFixture svc("--workers 4");
    std::string out;
    const int rc = svc.client(
        "--submit --features german --n 4 --wait 0", out);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    const ExploreResult ref = germanReference(4);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(Service, SigkilledWorkerRecoversToTheExactFixpoint)
{
    // Aggressive barriers so the kill lands between checkpoints and
    // recovery genuinely reshards a partial exploration.
    ServiceFixture svc("--workers 4 --checkpoint-every 300ms");
    std::string out;
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0)
        << out;

    // Grab a worker pid from --status, then SIGKILL it mid-flight.
    pid_t victim = -1;
    for (int i = 0; i < 100 && victim < 0; ++i) {
        ASSERT_EQ(svc.client("--status", out), 0) << out;
        const auto pos = out.find("pids=");
        if (pos != std::string::npos) {
            // Second pid of the comma-separated list.
            const auto comma = out.find(',', pos);
            if (comma != std::string::npos)
                victim = static_cast<pid_t>(
                    std::strtol(out.c_str() + comma + 1, nullptr, 10));
        }
        if (victim < 0)
            ::usleep(20 * 1000);
    }
    ASSERT_GT(victim, 0) << "no running worker to kill: " << out;
    // Let it explore long enough that a checkpoint epoch commits.
    ::usleep(500 * 1000);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    const int rc = svc.client("--wait 1", out);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    const ExploreResult ref = germanReference(5);
    // The differential heart of the test: kill-and-reshard must land
    // on the same fixpoint counts as an undisturbed sequential run.
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(Service, BackedOffJobsCheckpointSurvivesInterleavedJobs)
{
    // Regression: checkpoint pruning must keep the committed epoch of
    // a job that is sitting out its retry backoff. Epochs are global
    // across jobs, and pruning "everything but the current job's
    // epoch" deleted a backed-off job's partition files as soon as
    // any other job committed or finished — turning one recoverable
    // worker kill into a resume failure and, after the retries
    // burned, an unwarranted quarantine.
    ServiceFixture svc("--workers 4 --checkpoint-every 200ms");
    std::string out;
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0)
        << out;
    // A fast job queued behind it: it will run (and prune) inside
    // job 1's backoff window after the kill below.
    ASSERT_EQ(svc.client("--submit --mutant leaf_silent_upgrade",
                         out),
              0)
        << out;

    pid_t victim = -1;
    for (int i = 0; i < 100 && victim < 0; ++i) {
        ASSERT_EQ(svc.client("--status", out), 0) << out;
        const auto pos = out.find("pids=");
        if (pos != std::string::npos)
            victim = static_cast<pid_t>(
                std::strtol(out.c_str() + pos + 5, nullptr, 10));
        if (victim < 0)
            ::usleep(20 * 1000);
    }
    ASSERT_GT(victim, 0) << "no running worker to kill: " << out;
    // Long enough for a checkpoint epoch to commit, so the retry has
    // a base it must find intact after job 2's prune.
    ::usleep(500 * 1000);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    // The mutant job completes (with its violation verdict) during
    // the backoff window...
    EXPECT_EQ(svc.client("--wait 2", out), kExitViolation) << out;
    // ...and the wounded job must still recover to the exact
    // fixpoint, from the checkpoint the mutant job ran past.
    const int rc = svc.client("--wait 1", out);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    const ExploreResult ref = germanReference(5);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(Service, SigkilledCoordinatorReplaysEveryJobExactlyOnce)
{
    ServiceFixture svc("--workers 2 --checkpoint-every 300ms");
    std::string out;
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0);
    ASSERT_EQ(svc.client("--submit --features german --n 3", out), 0);
    ASSERT_EQ(svc.client("--submit --features msi --system closed"
                         " --n 2",
                         out),
              0);
    // Kill the coordinator while job 1 is mid-exploration.
    ::usleep(400 * 1000);
    svc.stop(); // SIGKILL, no goodbye

    // Crash-only restart: same state dir, drain the queue, exit.
    const pid_t drainer = spawnNeoverify(
        {"--serve", svc.sock, "--state-dir", svc.dir + "/state",
         "--workers", "2", "--heartbeat", "100ms", "--backoff",
         "100ms", "--drain"},
        svc.dir + "/serve.log");
    ASSERT_GT(drainer, 0);
    int st = -1;
    ASSERT_EQ(::waitpid(drainer, &st, 0), drainer);
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
        << "drain exited " << st;

    // The journal is the ledger: every job DONE exactly once.
    std::string dump;
    const std::string dumpCmd = std::string(NEOVERIFY_BIN) +
                                " --journal " + svc.dir +
                                "/state/journal.neoj 2>&1";
    FILE *p = ::popen(dumpCmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    char buf[4096];
    while (std::fgets(buf, sizeof buf, p) != nullptr)
        dump += buf;
    ::pclose(p);

    for (int jobId = 1; jobId <= 3; ++jobId) {
        const std::string needle =
            "DONE job=" + std::to_string(jobId) + " ";
        std::size_t count = 0;
        for (std::size_t at = dump.find(needle);
             at != std::string::npos;
             at = dump.find(needle, at + 1))
            ++count;
        EXPECT_EQ(count, 1u)
            << "job " << jobId << " finished " << count
            << " times\n" << dump;
    }
    // And the counts are still the exact sequential fixpoint.
    const ExploreResult ref = germanReference(5);
    const auto doneAt = dump.find("DONE job=1 ");
    ASSERT_NE(doneAt, std::string::npos);
    const std::string doneLine =
        dump.substr(doneAt, dump.find('\n', doneAt) - doneAt);
    EXPECT_EQ(scrapeCount(doneLine, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(doneLine, "transitions"),
              ref.transitionsFired);
}

TEST(Service, PoisonJobQuarantinesWithTheDedicatedExitCode)
{
    ServiceFixture svc("--workers 2 --retries 2 --backoff 50ms");
    std::string out;
    const int rc = svc.client("--submit --features german --n 4"
                              " --inject-crash-after 200 --wait 0",
                              out);
    svc.stop();
    EXPECT_EQ(rc, kExitQuarantined) << out;
    EXPECT_NE(out.find("QUARANTINED"), std::string::npos) << out;
}

TEST(Service, WaiterOutlivesRetryBackoffOnProgressPulses)
{
    // A job parked in exponential backoff has no attempt and thus no
    // ping rounds ticking progress; the coordinator must still pulse
    // its waiters, or a --net-timeout shorter than the backoff gap
    // expires against a perfectly healthy queue (exit 7 where the
    // truth is exit 6). Both gaps here (1.5 s, 3 s) dwarf the 700 ms
    // read deadline — only backoff-phase frames can keep it fed.
    ServiceFixture svc("--workers 2 --retries 3 --backoff 1500ms"
                       " --progress-every 200ms");
    std::string out;
    const int rc = svc.client("--submit --features german --n 4"
                              " --inject-crash-after 200"
                              " --wait 0 --net-timeout 700ms",
                              out);
    svc.stop();
    EXPECT_EQ(rc, kExitQuarantined) << out;
    EXPECT_NE(out.find("phase=backoff"), std::string::npos) << out;
    EXPECT_NE(out.find("QUARANTINED"), std::string::npos) << out;
}

TEST(Service, CancelledPendingJobReportsInterrupted)
{
    ServiceFixture svc("--workers 2");
    std::string out;
    // Big job first so the small one stays Pending long enough.
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0);
    ASSERT_EQ(svc.client("--submit --features german --n 3", out), 0);
    ASSERT_EQ(svc.client("--cancel 2", out), 0) << out;
    const int rc = svc.client("--wait 2", out);
    svc.stop();
    EXPECT_EQ(rc, kExitInterrupted) << out;
    EXPECT_NE(out.find("CANCELLED"), std::string::npos) << out;
}

TEST(Service, ViolationVerdictTravelsBackToTheClient)
{
    ServiceFixture svc("--workers 3");
    std::string out;
    // nsmesi n=2 open/modified is the paper's composition failure: a
    // real violation, found distributed, must exit 1 like the CLI.
    const int rc = svc.client("--submit --features nsmesi --system "
                              "open --method modified --n 2 --wait 0",
                              out);
    svc.stop();
    EXPECT_EQ(rc, kExitViolation) << out;
    EXPECT_NE(out.find("INVARIANT VIOLATED"), std::string::npos)
        << out;
}

TEST(Service, SubmitRejectsUnknownModelAtTheDoor)
{
    ServiceFixture svc("--workers 2");
    std::string out;
    const int rc =
        svc.client("--submit --features bogus --wait 0", out);
    svc.stop();
    EXPECT_EQ(rc, kExitUsage) << out;
}

// ---------------------------------------------------------------
// Concurrent attempts (--max-jobs)
// ---------------------------------------------------------------

/** Per-job status scrape: the "states=N" on job @p id's RUNNING line
 *  (~0 when the job has no such line). */
std::uint64_t
runningStates(const std::string &status, int id)
{
    const std::string head = "job " + std::to_string(id) + " ";
    const auto at = status.find(head);
    if (at == std::string::npos)
        return ~0ULL;
    const auto eol = status.find('\n', at);
    const std::string line = status.substr(at, eol - at);
    if (line.find("RUNNING") == std::string::npos)
        return ~0ULL;
    return scrapeCount(line, "states");
}

TEST(Service, ConcurrentJobsInterleaveProgressAndBothFinishExactly)
{
    ServiceFixture svc("--workers 2 --max-jobs 2");
    std::string out;
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0)
        << out;
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0)
        << out;

    // Interleaving proof: one status snapshot showing BOTH attempts
    // mid-exploration (running, each with progress of its own).
    bool interleaved = false;
    for (int i = 0; i < 200 && !interleaved; ++i) {
        ASSERT_EQ(svc.client("--status", out), 0) << out;
        const std::uint64_t s1 = runningStates(out, 1);
        const std::uint64_t s2 = runningStates(out, 2);
        interleaved = s1 != ~0ULL && s2 != ~0ULL && s1 > 0 && s2 > 0;
        if (!interleaved)
            ::usleep(20 * 1000);
    }
    EXPECT_TRUE(interleaved)
        << "jobs never ran concurrently:\n" << out;

    ASSERT_EQ(svc.client("--wait 1", out), 0) << out;
    const ExploreResult ref = germanReference(5);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
    const int rc = svc.client("--wait 2", out);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(Service, SigkilledCoordinatorWithConcurrentJobsReplaysExactlyOnce)
{
    ServiceFixture svc(
        "--workers 2 --max-jobs 2 --checkpoint-every 300ms");
    std::string out;
    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0);
    ASSERT_EQ(svc.client("--submit --features german --n 4", out), 0);
    ASSERT_EQ(svc.client("--submit --features msi --system closed"
                         " --n 2",
                         out),
              0);
    // Kill the coordinator while (at least) two attempts are live.
    ::usleep(400 * 1000);
    svc.stop(); // SIGKILL, no goodbye

    const pid_t drainer = spawnNeoverify(
        {"--serve", svc.sock, "--state-dir", svc.dir + "/state",
         "--workers", "2", "--max-jobs", "2", "--heartbeat", "100ms",
         "--backoff", "100ms", "--drain"},
        svc.dir + "/serve.log");
    ASSERT_GT(drainer, 0);
    int st = -1;
    ASSERT_EQ(::waitpid(drainer, &st, 0), drainer);
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
        << "drain exited " << st;

    std::string dump;
    const std::string dumpCmd = std::string(NEOVERIFY_BIN) +
                                " --journal " + svc.dir +
                                "/state/journal.neoj 2>&1";
    FILE *p = ::popen(dumpCmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    char buf[4096];
    while (std::fgets(buf, sizeof buf, p) != nullptr)
        dump += buf;
    ::pclose(p);
    for (int jobId = 1; jobId <= 3; ++jobId) {
        const std::string needle =
            "DONE job=" + std::to_string(jobId) + " ";
        std::size_t count = 0;
        for (std::size_t at = dump.find(needle);
             at != std::string::npos;
             at = dump.find(needle, at + 1))
            ++count;
        EXPECT_EQ(count, 1u)
            << "job " << jobId << " finished " << count << " times\n"
            << dump;
    }
}

TEST(Service, PoisonJobDoesNotStarveItsNeighbor)
{
    ServiceFixture svc(
        "--workers 2 --max-jobs 2 --retries 2 --backoff 50ms");
    std::string out;
    // Job 1 is deterministic poison: it crash-loops through its
    // retries. Job 2, admitted concurrently, must sail past it.
    ASSERT_EQ(svc.client("--submit --features german --n 4"
                         " --inject-crash-after 200",
                         out),
              0)
        << out;
    ASSERT_EQ(svc.client("--submit --features german --n 4", out), 0)
        << out;
    ASSERT_EQ(svc.client("--wait 2", out), 0) << out;
    const ExploreResult ref = germanReference(4);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
    const int rc = svc.client("--wait 1", out);
    svc.stop();
    EXPECT_EQ(rc, kExitQuarantined) << out;
    EXPECT_NE(out.find("QUARANTINED"), std::string::npos) << out;
}

TEST(Service, WaitStreamsProgressFrames)
{
    ServiceFixture svc("--workers 2 --progress-every 150ms");
    std::string out;
    const int rc = svc.client(
        "--submit --features german --n 5 --wait 0", out);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    // At least one streamed progress line preceded the verdict, and
    // the progress spelling must never collide with the verdict's
    // exact "states=" counters that scrapers key on.
    EXPECT_NE(out.find("progress job=1 phase="), std::string::npos)
        << out;
    const ExploreResult ref = germanReference(5);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(Service, ConnectFailureUsesTheServiceUnavailableExit)
{
    const std::string cmd =
        std::string(NEOVERIFY_BIN) +
        " --sock /nonexistent/nowhere.sock --status >/dev/null 2>&1";
    const int st = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(st));
    EXPECT_EQ(WEXITSTATUS(st), kExitServiceUnavailable);
}

#endif // NEOVERIFY_BIN

} // namespace
