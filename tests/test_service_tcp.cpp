/**
 * @file
 * TCP star topology + deterministic network chaos, end to end.
 *
 * The service's multi-box contract: with --listen, workers (local
 * forks or pool agents joined from other boxes) dial the coordinator
 * back over TCP and route their state batches through its relay. The
 * network is a first-class failure domain here, so these tests put a
 * deterministic fault-injecting proxy INTO the worker path and assert
 * the differential property that anchors the whole service design:
 *
 *   with links being severed, delayed and truncated mid-frame on a
 *   reproducible schedule, a distributed attempt either lands on the
 *   EXACT sequential fixpoint counts or fails cleanly into a retry —
 *   a false Verified must be impossible (the per-attempt Σsent ==
 *   Σrecv rule can never re-balance over a lossy link).
 *
 * Below that: chaos-spec parsing, schedule determinism (same seed →
 * same fault log), proxy passthrough fidelity, pool-agent join, and
 * the client-side deadline contract against a hung coordinator.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "verif/explorer.hpp"
#include "verif/models/german.hpp"
#include "verif/service/chaos_proxy.hpp"
#include "verif/service/wire.hpp"

using namespace neo;
using namespace neo::verif;
namespace fs = std::filesystem;

namespace
{

std::string
tempDir(const std::string &tag)
{
    std::string tmpl =
        (fs::temp_directory_path() / (tag + ".XXXXXX")).string();
    char *p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    return tmpl;
}

struct DirGuard
{
    std::string path;
    explicit DirGuard(std::string p) : path(std::move(p)) {}
    ~DirGuard()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** Reserve a loopback port by bind(0)/getsockname/close. The gap
 *  before the real listener rebinds it is racy in principle; in the
 *  single-suite test environment it is dependable, and it is the only
 *  way to advertise a proxy address before the proxy's upstream (the
 *  coordinator) exists. */
std::string
pickFreeAddr()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in sa = {};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                     sizeof sa),
              0);
    socklen_t len = sizeof sa;
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&sa),
                            &len),
              0);
    ::close(fd);
    return "127.0.0.1:" + std::to_string(ntohs(sa.sin_port));
}

// ---------------------------------------------------------------
// Chaos spec + proxy
// ---------------------------------------------------------------

TEST(ChaosSpec, ParsesTheFullSurface)
{
    ChaosSpec spec;
    std::string err;
    ASSERT_TRUE(ChaosSpec::parse(
        "seed=42,every=32768,drop=1,dup=2,trunc=3,sever=4,delay=5,"
        "delayms=25,span=64,skip=2",
        spec, err))
        << err;
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.everyBytes, 32768u);
    EXPECT_EQ(spec.weightDrop, 1u);
    EXPECT_EQ(spec.weightDup, 2u);
    EXPECT_EQ(spec.weightTrunc, 3u);
    EXPECT_EQ(spec.weightSever, 4u);
    EXPECT_EQ(spec.weightDelay, 5u);
    EXPECT_DOUBLE_EQ(spec.delayMs, 25.0);
    EXPECT_EQ(spec.spanBytes, 64u);
    EXPECT_EQ(spec.skipConnections, 2u);
    EXPECT_EQ(spec.totalWeight(), 15u);
}

TEST(ChaosSpec, RejectsJunk)
{
    ChaosSpec spec;
    std::string err;
    EXPECT_FALSE(ChaosSpec::parse("seed=", spec, err));
    EXPECT_FALSE(ChaosSpec::parse("bogus=1", spec, err));
    EXPECT_FALSE(ChaosSpec::parse("seed=abc", spec, err));
    EXPECT_FALSE(ChaosSpec::parse("seed=1,,drop=1", spec, err));
}

/** One-connection sink server: accepts, drains everything, stores
 *  it. Lives on its own thread. */
struct SinkServer
{
    int listenFd = -1;
    std::string addr;
    std::thread thread;
    std::vector<std::uint8_t> received;
    std::atomic<bool> done{false};

    SinkServer()
    {
        std::string err;
        listenFd = listenTcp("127.0.0.1:0", err, &addr);
        EXPECT_GE(listenFd, 0) << err;
        thread = std::thread([this] {
            const int c = ::accept(listenFd, nullptr, nullptr);
            if (c >= 0) {
                std::uint8_t buf[4096];
                for (;;) {
                    const ssize_t r = readRetry(c, buf, sizeof buf);
                    if (r <= 0)
                        break;
                    received.insert(received.end(), buf, buf + r);
                }
                ::close(c);
            }
            done = true;
        });
    }

    ~SinkServer()
    {
        if (thread.joinable())
            thread.join();
        if (listenFd >= 0)
            ::close(listenFd);
    }
};

std::vector<std::uint8_t>
patternBytes(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 131 + 17);
    return out;
}

TEST(ChaosProxy, ZeroWeightsForwardLosslessly)
{
    SinkServer sink;
    ChaosProxy proxy;
    ChaosSpec spec; // all weights zero: pure forwarder
    std::string err;
    ASSERT_TRUE(proxy.start("127.0.0.1:0", sink.addr, spec, err))
        << err;

    const auto sent = patternBytes(256 * 1024);
    const int fd = connectTcp(proxy.boundAddress(), err, 5.0);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(writeFull(fd, sent.data(), sent.size()));
    ::close(fd);
    for (int i = 0; i < 500 && !sink.done; ++i)
        ::usleep(10 * 1000);
    proxy.stop();
    EXPECT_EQ(sink.received, sent);
    EXPECT_EQ(proxy.faultsInjected(), 0u);
}

TEST(ChaosProxy, SameSeedSameBytesSameSchedule)
{
    // The reproducibility contract: the fault schedule is a pure
    // function of (seed, connection, direction, byte offset), so two
    // independent proxy instances fed the identical byte stream must
    // log the identical faults — regardless of chunking or timing.
    const auto sent = patternBytes(512 * 1024);
    ChaosSpec spec;
    std::string err;
    ASSERT_TRUE(ChaosSpec::parse(
        "seed=99,every=16384,drop=1,dup=1,delay=1,delayms=1,span=32",
        spec, err))
        << err;

    std::string logs[2];
    for (int round = 0; round < 2; ++round) {
        SinkServer sink;
        ChaosProxy proxy;
        ASSERT_TRUE(proxy.start("127.0.0.1:0", sink.addr, spec, err))
            << err;
        const int fd = connectTcp(proxy.boundAddress(), err, 5.0);
        ASSERT_GE(fd, 0) << err;
        // Dribble in uneven chunks so kernel framing differs between
        // rounds even though the byte stream does not.
        std::size_t pos = 0;
        std::size_t step = 1000 + round * 7777;
        while (pos < sent.size()) {
            const std::size_t n =
                std::min(step, sent.size() - pos);
            ASSERT_TRUE(writeFull(fd, sent.data() + pos, n));
            pos += n;
            step = (step * 31) % 20000 + 500;
        }
        ::close(fd);
        for (int i = 0; i < 500 && !sink.done; ++i)
            ::usleep(10 * 1000);
        proxy.stop();
        logs[round] = proxy.scheduleLog();
        EXPECT_GT(proxy.faultsInjected(), 0u);
    }
    EXPECT_EQ(logs[0], logs[1]);
}

// ---------------------------------------------------------------
// End-to-end TCP star topology against the real binary
// ---------------------------------------------------------------

#ifdef NEOVERIFY_BIN

std::vector<std::string>
splitArgs(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == ' ') {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

pid_t
spawnNeoverify(const std::vector<std::string> &args,
               const std::string &logPath)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const int log = ::open(logPath.c_str(),
                           O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (log >= 0) {
        ::dup2(log, 1);
        ::dup2(log, 2);
        ::close(log);
    }
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(NEOVERIFY_BIN));
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(NEOVERIFY_BIN, argv.data());
    ::_exit(127);
}

/** Coordinator with a TCP listener beside the unix socket. */
struct TcpServiceFixture
{
    std::string dir;
    std::string sock;
    std::string tcpAddr; ///< resolved listen address
    pid_t coordinator = -1;
    bool up = false;

    explicit TcpServiceFixture(const std::string &extraArgs = "",
                               const std::string &listen =
                                   "127.0.0.1:0",
                               const std::string &advertise = "")
        : dir(tempDir("svctcp")), sock(dir + "/neo.sock")
    {
        std::vector<std::string> args = {
            "--serve",     sock,
            "--state-dir", dir + "/state",
            "--heartbeat", "100ms",
            "--backoff",   "100ms",
            "--listen",    listen,
        };
        if (!advertise.empty()) {
            args.push_back("--advertise");
            args.push_back(advertise);
        }
        for (auto &a : splitArgs(extraArgs))
            args.push_back(std::move(a));
        coordinator = spawnNeoverify(args, dir + "/serve.log");
        for (int i = 0; i < 200; ++i) {
            std::string err;
            const int fd = connectUnix(sock, err);
            if (fd >= 0) {
                ::close(fd);
                up = true;
                break;
            }
            ::usleep(50 * 1000);
        }
        EXPECT_TRUE(up) << "coordinator never came up";
        // The resolved TCP address lands in state-dir/tcp-addr.
        for (int i = 0; i < 200 && tcpAddr.empty(); ++i) {
            std::ifstream f(dir + "/state/tcp-addr");
            std::getline(f, tcpAddr);
            if (tcpAddr.empty())
                ::usleep(20 * 1000);
        }
        EXPECT_FALSE(tcpAddr.empty()) << "no tcp-addr file";
    }

    int
    client(const std::string &args, std::string &out) const
    {
        const std::string cmd = std::string(NEOVERIFY_BIN) +
                                " --sock " + sock + " " + args +
                                " 2>&1";
        FILE *p = ::popen(cmd.c_str(), "r");
        if (p == nullptr)
            return -1;
        char buf[4096];
        out.clear();
        while (std::fgets(buf, sizeof buf, p) != nullptr)
            out += buf;
        const int st = ::pclose(p);
        return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
    }

    void
    stop()
    {
        if (coordinator > 0) {
            ::kill(coordinator, SIGKILL);
            ::waitpid(coordinator, nullptr, 0);
            coordinator = -1;
        }
    }

    ~TcpServiceFixture() { stop(); }
};

std::uint64_t
scrapeCount(const std::string &text, const std::string &key)
{
    const auto pos = text.find(key + "=");
    if (pos == std::string::npos)
        return ~0ULL;
    return std::strtoull(text.c_str() + pos + key.size() + 1, nullptr,
                         10);
}

ExploreResult
germanReference(std::size_t n)
{
    ModelShape shape;
    TransitionSystem ts = buildGermanModel(n, shape);
    ExploreLimits lim;
    lim.maxStates = 8'000'000;
    return explore(ts, lim, false, true);
}

TEST(ServiceTcp, StarTopologyMatchesSequentialCounts)
{
    TcpServiceFixture svc("--workers 3");
    std::string out;
    const int rc = svc.client(
        "--submit --features german --n 4 --wait 0", out);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    const ExploreResult ref = germanReference(4);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(ServiceTcp, ClientVerbsWorkOverTcpToo)
{
    TcpServiceFixture svc("--workers 2");
    // Same verbs, but --sock is the TCP endpoint instead of the
    // unix path.
    const std::string cmd = std::string(NEOVERIFY_BIN) + " --sock " +
                            svc.tcpAddr +
                            " --submit --features msi --system "
                            "closed --n 2 --wait 0 2>&1";
    FILE *p = ::popen(cmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    char buf[4096];
    std::string out;
    while (std::fgets(buf, sizeof buf, p) != nullptr)
        out += buf;
    const int st = ::pclose(p);
    svc.stop();
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0) << out;
    EXPECT_NE(out.find("VERIFIED"), std::string::npos) << out;
}

TEST(ServiceTcp, JoinedPoolWorkersRunTheAttempt)
{
    TcpServiceFixture svc("--workers 2");
    std::string out;
    // Two pool agents offer this box; W=2, so a fresh attempt should
    // be staffed entirely by them.
    const pid_t agent1 = spawnNeoverify({"--join", svc.tcpAddr},
                                        svc.dir + "/agent1.log");
    const pid_t agent2 = spawnNeoverify({"--join", svc.tcpAddr},
                                        svc.dir + "/agent2.log");
    ASSERT_GT(agent1, 0);
    ASSERT_GT(agent2, 0);
    bool pooled = false;
    for (int i = 0; i < 200 && !pooled; ++i) {
        ASSERT_EQ(svc.client("--status", out), 0) << out;
        pooled = out.find("pool=2") != std::string::npos;
        if (!pooled)
            ::usleep(20 * 1000);
    }
    EXPECT_TRUE(pooled) << out;

    ASSERT_EQ(svc.client("--submit --features german --n 5", out), 0)
        << out;
    // Remote workers print pid -1 in the status table: catching that
    // mid-run proves the attempt really is staffed by the pool.
    bool remote = false;
    for (int i = 0; i < 200 && !remote; ++i) {
        ASSERT_EQ(svc.client("--status", out), 0) << out;
        remote = out.find("pids=-1,-1") != std::string::npos;
        if (!remote) {
            if (out.find("job 1 DONE") != std::string::npos)
                break;
            ::usleep(10 * 1000);
        }
    }
    EXPECT_TRUE(remote) << "attempt never ran on pool workers:\n"
                        << out;
    const int rc = svc.client("--wait 1", out);
    ::kill(agent1, SIGTERM);
    ::kill(agent2, SIGTERM);
    ::waitpid(agent1, nullptr, 0);
    ::waitpid(agent2, nullptr, 0);
    svc.stop();
    ASSERT_EQ(rc, 0) << out;
    const ExploreResult ref = germanReference(5);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored);
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired);
}

TEST(ServiceTcp, ChaoticLinksRetryToTheExactFixpointNeverFalseVerify)
{
    // THE acceptance test: every worker byte flows through a proxy
    // that severs, truncates and delays on a fixed seed. Attempts die
    // to link faults; checkpointed progress survives into retries;
    // the verdict that finally lands must carry the exact sequential
    // counts. Any accounting hole would surface here as a mismatch
    // (false Verified) — the one outcome this design must exclude.
    const std::string coordAddr = pickFreeAddr();
    const std::string proxyAddr = pickFreeAddr();
    // The checkpoint cadence is wall-clock while the fault schedule
    // is byte-positional, so the cadence must track engine speed:
    // PR 10's faster successor generation reaches the same lethal
    // byte offsets in fewer 200ms ticks, leaving attempts too little
    // banked progress to converge within the retry budget. 100ms
    // restores the epochs-per-megabyte the schedule was tuned for.
    TcpServiceFixture svc(
        "--workers 4 --checkpoint-every 100ms --retries 14",
        coordAddr, proxyAddr);

    // Calibrated against the ~40MB a german N=5 run routes through
    // the star: a lethal fault (sever/trunc) lands on average every
    // `every * totalWeight/2 = 8MB` per direction, so attempts die a
    // handful of times across the campaign while each one still lives
    // long enough to bank checkpoint epochs. Denser schedules starve
    // every attempt before its first checkpoint and the job can only
    // quarantine.
    ChaosSpec spec;
    std::string err;
    ASSERT_TRUE(ChaosSpec::parse("seed=7,every=2097152,sever=1,"
                                 "trunc=1,delay=6,delayms=5,span=96",
                                 spec, err))
        << err;
    ChaosProxy proxy;
    ASSERT_TRUE(proxy.start(proxyAddr, coordAddr, spec, err)) << err;

    std::string out;
    const int rc = svc.client(
        "--submit --features german --n 5 --wait 0", out);
    svc.stop();
    proxy.stop();
    ASSERT_EQ(rc, 0) << out << "\nschedule:\n" << proxy.scheduleLog();
    const ExploreResult ref = germanReference(5);
    EXPECT_EQ(scrapeCount(out, "states"), ref.statesExplored)
        << out << "\nschedule:\n" << proxy.scheduleLog();
    EXPECT_EQ(scrapeCount(out, "transitions"), ref.transitionsFired)
        << out;
    EXPECT_GT(proxy.faultsInjected(), 0u)
        << "schedule never fired; the test proved nothing";
}

TEST(ServiceTcp, ClientDeadlineExpiresAgainstAHungCoordinator)
{
    // A listener that accepts nothing: connects land in the backlog
    // and never get a byte back. Every client verb must give up after
    // --net-timeout and exit 7, not hang the caller forever.
    std::string addr;
    std::string err;
    const int fd = listenTcp("127.0.0.1:0", err, &addr);
    ASSERT_GE(fd, 0) << err;

    const std::string cmd = std::string(NEOVERIFY_BIN) + " --sock " +
                            addr +
                            " --status --net-timeout 300ms "
                            ">/dev/null 2>&1";
    const auto before = std::chrono::steady_clock::now();
    const int st = std::system(cmd.c_str());
    const double took =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - before)
            .count();
    ::close(fd);
    ASSERT_TRUE(WIFEXITED(st));
    EXPECT_EQ(WEXITSTATUS(st), kExitServiceUnavailable);
    EXPECT_LT(took, 5.0) << "deadline did not bound the hang";
}

#endif // NEOVERIFY_BIN

} // namespace
