/**
 * @file
 * Unit tests for the simulation kernel: event ordering, cancellation,
 * limits, RNG determinism and distribution sanity, statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

using namespace neo;

namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            q.schedule(q.curTick() + 5, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(q.curTick(), 45u);
}

TEST(EventQueue, RespectsTickLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RespectsEventLimit)
{
    EventQueue q;
    for (int i = 0; i < 100; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.run(maxTick, 40), 40u);
    EXPECT_EQ(q.pending(), 60u);
}

class CountingEvent : public Event
{
  public:
    void process() override { ++count; }
    int count = 0;
};

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    CountingEvent ev;
    q.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    q.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    q.run();
    EXPECT_EQ(ev.count, 0);
    // Rescheduling after a cancel works (generation bump).
    q.schedule(&ev, 20);
    q.run();
    EXPECT_EQ(ev.count, 1);
}

TEST(Random, DeterministicPerSeed)
{
    Random a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Random, BelowIsInRangeAndCoversIt)
{
    Random rng(7);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10'000; ++i) {
        const auto v = rng.below(10);
        ASSERT_LT(v, 10u);
        ++seen[v];
    }
    for (int i = 0; i < 10; ++i)
        EXPECT_GT(seen[i], 700) << "bucket " << i << " starved";
}

TEST(Random, ChanceMatchesProbability)
{
    Random rng(11);
    int hits = 0;
    for (int i = 0; i < 100'000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100'000.0, 0.25, 0.01);
}

TEST(Random, GeometricHasRequestedMean)
{
    Random rng(13);
    double total = 0;
    constexpr int n = 200'000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.geometric(8.0));
    EXPECT_NEAR(total / n, 8.0, 0.5);
}

TEST(SampleStat, WelfordMatchesClosedForm)
{
    SampleStat s("x");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stdev(), 2.138, 0.001); // sample stdev
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(SampleStat, EdgeCases)
{
    SampleStat s("x");
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stdev(), 0.0);
    s.sample(3.5);
    EXPECT_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.stdev(), 0.0); // single sample
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h("lat", 10.0, 4);
    for (double v : {0.0, 5.0, 15.0, 35.0, 39.9, 40.0, 1000.0})
        h.sample(v);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(4), 2u); // overflow
    EXPECT_EQ(h.count(), 7u);
}

} // namespace
