/**
 * @file
 * Property suite for the state store's capacity tiers (PR "billion-
 * state explorer"): delta-codec round-trips (zero-diff dedup,
 * all-diff anchor fallback, slab-boundary crossings, randomized BFS-
 * shaped chains), the bounded anchor-chain depth invariant, fixpoint
 * equality between the plain, delta and delta+spill tiers on the
 * bundled models across thread counts, the Stern–Dill omission
 * probability contract of hash compaction, and a forced-collision
 * demonstration that compaction really does drop states (the
 * documented unsoundness) while the exact tiers never do.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/models/mutants.hpp"
#include "verif/parallel_explorer.hpp"
#include "verif/state_store.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

/** Little-endian counter state of @p stride bytes for value @p v. */
std::vector<std::uint8_t>
counterState(std::size_t stride, std::uint64_t v)
{
    std::vector<std::uint8_t> s(stride, 0);
    for (std::size_t i = 0; i < stride && i < 8; ++i)
        s[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return s;
}

/** Degenerate hash: every state shares one fingerprint. In the exact
 *  tiers the byte-compare fallback must still dedup correctly; in
 *  the compact tier the fingerprint IS the identity, so everything
 *  conflates — which is exactly what the unsoundness test forces. */
std::uint64_t
collidingHash(const std::uint8_t *, std::size_t)
{
    return 0x1234567812345678ULL;
}

/** xorshift64*, deterministic across platforms. */
struct Rng
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dULL;
    }
};

StoreTierOptions
deltaOpts(unsigned anchorEvery = 8)
{
    StoreTierOptions o;
    o.tier = StoreTier::Delta;
    o.anchorEvery = anchorEvery;
    return o;
}

/** Self-deleting spill directory. */
class TempSpillDir
{
  public:
    TempSpillDir()
    {
        char tmpl[] = "/tmp/neo_spill_XXXXXX";
        const char *d = mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path_ = d != nullptr ? d : "";
    }
    ~TempSpillDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

struct Fixpoint
{
    VerifStatus status;
    std::uint64_t states;
    std::uint64_t transitions;
    std::vector<std::uint64_t> ruleFires;
};

Fixpoint
runTier(const TransitionSystem &ts, unsigned threads,
        const StoreTierOptions &opts)
{
    ExploreLimits lim;
    lim.maxStates = 2'000'000;
    lim.maxSeconds = 120.0;
    lim.threads = threads;
    lim.store = opts;
    const ExploreResult r = threads > 1 ? exploreParallel(ts, lim)
                                        : explore(ts, lim);
    return {r.status, r.statesExplored, r.transitionsFired,
            r.ruleFires};
}

void
expectSameFixpoint(const Fixpoint &got, const Fixpoint &ref)
{
    EXPECT_EQ(got.status, ref.status);
    EXPECT_EQ(got.states, ref.states);
    EXPECT_EQ(got.transitions, ref.transitions);
    EXPECT_EQ(got.ruleFires, ref.ruleFires);
}

} // namespace

// ----------------------------------------------------------------
// Delta codec round-trip properties.
// ----------------------------------------------------------------

TEST(StateCodec, ZeroDiffSuccessorDedups)
{
    // A successor byte-identical to its parent is the SAME state;
    // the delta path must fall through to dedup, not store an empty
    // diff record.
    constexpr std::size_t stride = 24;
    StateStore store(stride, 0, nullptr, deltaOpts());
    const auto s = counterState(stride, 42);
    const auto [id, fresh] = store.intern(s.data());
    ASSERT_TRUE(fresh);
    const auto [id2, fresh2] = store.intern(s.data(), id, s.data());
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(id2, id);
    EXPECT_EQ(store.size(), 1u);
}

TEST(StateCodec, AllDiffStatesFallBackToAnchors)
{
    // States differing from their base in EVERY byte: a diff record
    // would exceed the full stride, so the codec must store anchors
    // (hop 0) and still round-trip byte-exactly.
    constexpr std::size_t stride = 32;
    StoreTierOptions opts = deltaOpts();
    StateStore store(stride, 0, nullptr, opts);
    std::vector<std::vector<std::uint8_t>> all;
    Rng rng{7};
    std::uint32_t prev = StateStore::kNoId;
    for (std::uint64_t v = 0; v < 500; ++v) {
        std::vector<std::uint8_t> s(stride);
        for (auto &b : s)
            b = static_cast<std::uint8_t>(rng.next() | 1); // never 0
        // Flip parity per round so consecutive states differ
        // everywhere (odd vs even bytes).
        if (v % 2 == 1) {
            for (auto &b : s)
                b = static_cast<std::uint8_t>(b << 1);
        }
        const auto [id, fresh] =
            store.intern(s.data(), prev,
                         prev == StateStore::kNoId
                             ? nullptr
                             : all.back().data());
        ASSERT_TRUE(fresh);
        all.push_back(s);
        prev = id;
    }
    VState out;
    for (std::uint32_t id = 0; id < all.size(); ++id) {
        store.copyTo(id, out);
        EXPECT_EQ(0, std::memcmp(out.data(), all[id].data(), stride))
            << "id " << id;
    }
}

TEST(StateCodec, RandomizedChainsRoundTripAcrossSlabBoundaries)
{
    // BFS-shaped randomized workload: each new state mutates a
    // random already-interned base in a few positions, interned with
    // that base in hand (like the explorers). 30k states cross
    // several index/byte slab boundaries (first index slab holds
    // 1024 entries); every id must reconstruct byte-exactly and
    // every re-intern must dedup to the original id.
    constexpr std::size_t stride = 40;
    StateStore store(stride, 0, nullptr, deltaOpts());
    std::vector<std::vector<std::uint8_t>> all;
    Rng rng{0x9e3779b97f4a7c15ULL};

    auto s0 = counterState(stride, 1);
    ASSERT_TRUE(store.intern(s0.data()).second);
    all.push_back(s0);

    while (all.size() < 30'000) {
        const std::uint32_t base = static_cast<std::uint32_t>(
            rng.next() % all.size());
        std::vector<std::uint8_t> s = all[base];
        const unsigned nMut = 1 + rng.next() % 4;
        for (unsigned m = 0; m < nMut; ++m)
            s[rng.next() % stride] =
                static_cast<std::uint8_t>(rng.next());
        const auto [id, fresh] =
            store.intern(s.data(), base, all[base].data());
        if (!fresh) {
            // Collided with an existing state: the id must point at
            // identical bytes.
            ASSERT_LT(id, all.size());
            EXPECT_EQ(all[id], s);
            continue;
        }
        ASSERT_EQ(id, all.size());
        all.push_back(std::move(s));
    }

    VState out;
    for (std::uint32_t id = 0; id < all.size(); ++id) {
        store.copyTo(id, out);
        ASSERT_EQ(0, std::memcmp(out.data(), all[id].data(), stride))
            << "id " << id;
        EXPECT_LE(store.hopOf(id), store.anchorEvery());
    }
    // Dedup still exact after the chains are deep.
    for (std::uint32_t id = 0; id < all.size(); id += 997) {
        const auto [got, fresh] = store.intern(all[id].data());
        EXPECT_FALSE(fresh);
        EXPECT_EQ(got, id);
    }
}

TEST(StateCodec, AnchorChainDepthIsBounded)
{
    // A maximally unfavourable workload for chain depth: one long
    // chain, each state a 1-byte diff of the previous. hopOf must
    // never exceed anchorEvery (a delta may base on any record of
    // hop < K, so hops span 0..K), for several anchorEvery values
    // including the degenerate 1 (deltas only directly off anchors).
    constexpr std::size_t stride = 16;
    for (unsigned k : {1u, 2u, 8u, 32u}) {
        StateStore store(stride, 0, nullptr, deltaOpts(k));
        std::vector<std::uint8_t> s = counterState(stride, 0);
        std::uint32_t prev = StateStore::kNoId;
        std::vector<std::uint8_t> prevBytes;
        for (std::uint64_t v = 0; v < 5'000; ++v) {
            s = counterState(stride, v);
            const auto [id, fresh] = store.intern(
                s.data(), prev,
                prevBytes.empty() ? nullptr : prevBytes.data());
            ASSERT_TRUE(fresh);
            ASSERT_LE(store.hopOf(id), k) << "anchorEvery=" << k;
            prev = id;
            prevBytes = s;
        }
    }
}

TEST(StateCodec, DeltaWithForcedCollisionsStaysExact)
{
    // Same contract as the plain store's collision test, but through
    // the delta codec: with every fingerprint identical, dedup rests
    // on byte compares that RECONSTRUCT through anchor chains.
    constexpr std::size_t stride = 12;
    StoreTierOptions opts = deltaOpts();
    opts.hash = &collidingHash;
    StateStore store(stride, 0, nullptr, opts);
    constexpr std::uint64_t n = 300;
    for (std::uint64_t v = 0; v < n; ++v) {
        const auto s = counterState(stride, v);
        const auto [id, fresh] = store.intern(s.data());
        EXPECT_TRUE(fresh);
        EXPECT_EQ(id, v);
    }
    for (std::uint64_t v = 0; v < n; ++v) {
        const auto s = counterState(stride, v);
        const auto [id, fresh] = store.intern(s.data());
        EXPECT_FALSE(fresh);
        EXPECT_EQ(id, v);
    }
    EXPECT_EQ(store.size(), n);
}

// ----------------------------------------------------------------
// Spill tier: lock-free reads across sheds, accounting drops.
// ----------------------------------------------------------------

TEST(StateCodec, ShedColdKeepsDataAndDropsAccounting)
{
    constexpr std::size_t stride = 48;
    TempSpillDir dir;
    StoreTierOptions opts;
    opts.spillDir = dir.path();
    opts.hotBytes = 1ULL << 30; // no LRU interference
    StateStore store(stride, 0, nullptr, opts);
    std::vector<std::vector<std::uint8_t>> all;
    for (std::uint64_t v = 0; v < 20'000; ++v) {
        auto s = counterState(stride, v * 2654435761ULL);
        ASSERT_TRUE(store.intern(s.data()).second);
        all.push_back(std::move(s));
    }
    const std::uint64_t hotBytes = store.memoryBytes();
    ASSERT_GT(store.shedCold(), 0u);
    const std::uint64_t coldBytes = store.memoryBytes();
    EXPECT_LT(coldBytes, hotBytes / 4)
        << "shedding must uncharge the mmap'd regions";
    EXPECT_GE(store.spillSheds(), 1u);
    // Every state faults back byte-exact, and interning still dedups.
    VState out;
    for (std::uint32_t id = 0; id < all.size(); id += 17) {
        store.copyTo(id, out);
        ASSERT_EQ(0, std::memcmp(out.data(), all[id].data(), stride));
    }
    for (std::uint32_t id = 0; id < all.size(); id += 997) {
        const auto [got, fresh] = store.intern(all[id].data());
        EXPECT_FALSE(fresh);
        EXPECT_EQ(got, id);
    }
    // The spill dir holds no slab files: they are unlinked the
    // moment they are mapped, so no crash can strand them either.
    std::size_t files = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(dir.path()))
        files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 0u);
}

TEST(StateCodec, LruEvictionShedsUnderHotBudget)
{
    constexpr std::size_t stride = 64;
    TempSpillDir dir;
    StoreTierOptions opts;
    opts.tier = StoreTier::Delta;
    opts.spillDir = dir.path();
    opts.hotBytes = 1ULL << 17; // 128 KB: force evictions
    StateStore store(stride, 0, nullptr, opts);
    std::vector<std::vector<std::uint8_t>> all;
    Rng rng{3};
    for (std::uint64_t v = 0; v < 50'000; ++v) {
        std::vector<std::uint8_t> s(stride);
        for (auto &b : s)
            b = static_cast<std::uint8_t>(rng.next());
        if (store.intern(s.data()).second)
            all.push_back(std::move(s));
    }
    EXPECT_GE(store.spillSheds(), 1u)
        << "a 128 KB hot budget must evict while interning 50k "
           "random 64-byte states";
    VState out;
    for (std::uint32_t id = 0; id < all.size(); id += 1009) {
        store.copyTo(id, out);
        ASSERT_EQ(0, std::memcmp(out.data(), all[id].data(), stride));
    }
}

// ----------------------------------------------------------------
// Fixpoint equality across tiers, models and thread counts.
// ----------------------------------------------------------------

TEST(StateCodec, FixpointEqualAcrossTiersOnAllModels)
{
    struct Named
    {
        std::string name;
        TransitionSystem ts;
    };
    std::vector<Named> models;
    {
        ModelShape shape;
        models.push_back({"german/N=3", buildGermanModel(3, shape)});
    }
    {
        ModelShape shape;
        models.push_back(
            {"closed/neomesi/N=3",
             buildClosedModel(3, VerifFeatures::neoMESI(), shape)});
    }
    {
        ModelShape shape;
        models.push_back(
            {"closed/moesi/N=3",
             buildClosedModel(3, VerifFeatures::withOwned(), shape)});
    }
    {
        ModelShape shape;
        models.push_back(
            {"open/neomesi/N=3",
             buildOpenModel(3, VerifFeatures::neoMESI(),
                            CompositionMethod::Modified, shape)});
    }

    for (const Named &m : models) {
        SCOPED_TRACE(m.name);
        const Fixpoint ref = runTier(m.ts, 1, {});
        ASSERT_EQ(ref.status, VerifStatus::Verified);

        TempSpillDir dir;
        StoreTierOptions spill = deltaOpts();
        spill.spillDir = dir.path();
        spill.hotBytes = 1ULL << 16;

        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            expectSameFixpoint(runTier(m.ts, threads, {}), ref);
            expectSameFixpoint(runTier(m.ts, threads, deltaOpts()),
                               ref);
            expectSameFixpoint(runTier(m.ts, threads, spill), ref);
        }
    }
}

TEST(StateCodec, DeltaTierReproducesViolationAndTrace)
{
    const Mutant *m = findMutant("leaf_silent_upgrade");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    const TransitionSystem ts = m->build(shape);

    ExploreLimits plain;
    plain.maxSeconds = 60.0;
    const ExploreResult ref = explore(ts, plain);
    ASSERT_EQ(ref.status, VerifStatus::InvariantViolated);

    ExploreLimits lim = plain;
    lim.store = deltaOpts();
    const ExploreResult r = explore(ts, lim);
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(r.violatedInvariant, ref.violatedInvariant);
    EXPECT_EQ(r.trace, ref.trace) << "the BFS order is tier-"
                                     "independent, so the trace is "
                                     "too";
    EXPECT_EQ(r.badState, ref.badState);
}

// ----------------------------------------------------------------
// Hash compaction: quantified omission, demonstrated unsoundness.
// ----------------------------------------------------------------

TEST(StateCodec, OmissionProbabilityMatchesAnalyticFormula)
{
    // Spot values against the Stern–Dill birthday bound
    // P = 1 - exp(-n(n-1)/2^(bits+1)).
    EXPECT_EQ(compactOmissionProbability(0, 64), 0.0);
    EXPECT_EQ(compactOmissionProbability(1, 64), 0.0);
    // Tiny-p regime: P ≈ n(n-1)/2^65 (first-order; the exact value
    // is a factor (1 - x/2 + …) below it); expm1 must not flush the
    // tiny exponent to 0.
    const double p1m = compactOmissionProbability(1'000'000, 64);
    const double approx =
        1e6 * (1e6 - 1.0) / std::pow(2.0, 65.0);
    EXPECT_GT(p1m, 0.0);
    EXPECT_NEAR(p1m / approx, 1.0, 1e-6);
    // 128-bit drives it 2^64 lower.
    EXPECT_LT(compactOmissionProbability(1'000'000, 128),
              p1m / 1e18);
    // Saturating regime: at n = 2^36 the exponent is ~128, so P is
    // 1 to machine precision — and nothing overflowed on the way.
    EXPECT_NEAR(compactOmissionProbability(1ULL << 36, 64), 1.0,
                1e-9);
    // Monotone in n.
    EXPECT_LT(compactOmissionProbability(1'000, 64),
              compactOmissionProbability(1'000'000, 64));
}

TEST(StateCodec, CompactRunReportsFormulaOmission)
{
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(3, shape);
    for (unsigned threads : {1u, 2u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        for (unsigned bits : {64u, 128u}) {
            StoreTierOptions opts;
            opts.tier = StoreTier::Compact;
            opts.compactBits = bits;
            ExploreLimits lim;
            lim.maxSeconds = 60.0;
            lim.threads = threads;
            lim.store = opts;
            const ExploreResult r = threads > 1
                                        ? exploreParallel(ts, lim)
                                        : explore(ts, lim);
            EXPECT_EQ(r.status, VerifStatus::Verified);
            EXPECT_TRUE(r.compactHashes);
            EXPECT_EQ(r.omissionProbability,
                      compactOmissionProbability(r.statesExplored,
                                                 bits))
                << "the reported probability must be the analytic "
                   "formula at the final state count";
            EXPECT_GT(r.omissionProbability, 0.0);
        }
    }
}

TEST(StateCodec, ForcedCollisionProvablyDropsViolation)
{
    // The documented unsoundness, made deterministic: with an
    // injected constant hash every state shares one fingerprint. The
    // EXACT tiers still find the mutant's violation (byte-compare
    // fallback); the compact tier conflates every successor with the
    // initial state and reports Verified — the violation is DROPPED.
    const Mutant *m = findMutant("leaf_silent_upgrade");
    ASSERT_NE(m, nullptr);
    ModelShape shape;
    const TransitionSystem ts = m->build(shape);

    StoreTierOptions collidePlain;
    collidePlain.hash = &collidingHash;
    ExploreLimits lim;
    lim.maxSeconds = 60.0;
    lim.store = collidePlain;
    const ExploreResult exact = explore(ts, lim);
    EXPECT_EQ(exact.status, VerifStatus::InvariantViolated)
        << "exact tiers tolerate any hash";

    StoreTierOptions collideCompact = collidePlain;
    collideCompact.tier = StoreTier::Compact;
    lim.store = collideCompact;
    const ExploreResult dropped = explore(ts, lim);
    EXPECT_EQ(dropped.status, VerifStatus::Verified)
        << "compaction must have conflated everything";
    EXPECT_EQ(dropped.statesExplored, 1u);
    EXPECT_TRUE(dropped.compactHashes);
}

// ----------------------------------------------------------------
// Memory ladder: spill sheds BEFORE anything lossy.
// ----------------------------------------------------------------

TEST(StateCodec, SpillShedsBeforeTraceLinksAreLost)
{
    ModelShape shape;
    const TransitionSystem ts = buildGermanModel(3, shape);

    TempSpillDir dir;
    StoreTierOptions spill = deltaOpts();
    spill.spillDir = dir.path();
    spill.hotBytes = 1ULL << 30; // shed only under pressure, not LRU

    ExploreLimits freeLim;
    freeLim.maxSeconds = 60.0;
    freeLim.store = spill;
    const ExploreResult freeRun = explore(ts, freeLim);
    ASSERT_EQ(freeRun.status, VerifStatus::Verified);
    ASSERT_EQ(freeRun.spillSheds, 0u);

    // A budget below the free-run footprint: the first ladder rung
    // (shed cold regions, lossless) must absorb the pressure — the
    // run verifies WITH its trace links intact.
    ExploreLimits tight = freeLim;
    tight.maxMemoryBytes = freeRun.memoryBytes * 95 / 100;
    const ExploreResult r = explore(ts, tight);
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_GE(r.spillSheds, 1u);
    EXPECT_FALSE(r.degradedTrace)
        << "disk must be shed before predecessor links";
    EXPECT_EQ(r.statesExplored, freeRun.statesExplored);
}
