/**
 * @file
 * Unit suite for the arena-interned state store (state_store.hpp):
 * intern idempotence, fingerprint-collision fallback to the byte
 * compare (forced via a degenerate hash), growth across arena-slab
 * boundaries, and TSan-clean concurrent interning under the same
 * mutex discipline the parallel explorer uses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "verif/state_store.hpp"

using namespace neo;

namespace
{

/** Little-endian counter state of @p stride bytes for value @p v. */
std::vector<std::uint8_t>
counterState(std::size_t stride, std::uint64_t v)
{
    std::vector<std::uint8_t> s(stride, 0);
    for (std::size_t i = 0; i < stride && i < 8; ++i)
        s[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return s;
}

/** Degenerate hash: every state collides into one fingerprint AND
 *  one probe-start slot, so dedup correctness rests entirely on the
 *  byte-compare fallback. */
std::uint64_t
collidingHash(const std::uint8_t *, std::size_t)
{
    return 0x1234567812345678ULL;
}

} // namespace

TEST(StateStore, InternIsIdempotent)
{
    constexpr std::size_t stride = 7;
    StateStore store(stride);
    for (std::uint64_t round = 0; round < 3; ++round) {
        for (std::uint64_t v = 0; v < 500; ++v) {
            const auto s = counterState(stride, v);
            const auto [id, fresh] = store.intern(s.data());
            EXPECT_EQ(id, v) << "ids are dense insertion indices";
            EXPECT_EQ(fresh, round == 0);
        }
    }
    EXPECT_EQ(store.size(), 500u);
    for (std::uint64_t v = 0; v < 500; ++v) {
        const auto s = counterState(stride, v);
        EXPECT_EQ(std::memcmp(
                      store.at(static_cast<std::uint32_t>(v)),
                      s.data(), stride),
                  0);
    }
}

TEST(StateStore, FingerprintCollisionFallsBackToByteCompare)
{
    // With every fingerprint identical, distinct states may only be
    // told apart by the full byte compare; equal states must still
    // dedup and nothing may be conflated.
    constexpr std::size_t stride = 5;
    StateStore store(stride, 0, &collidingHash);
    constexpr std::uint64_t n = 300;
    for (std::uint64_t v = 0; v < n; ++v) {
        const auto s = counterState(stride, v);
        const auto [id, fresh] = store.intern(s.data());
        EXPECT_TRUE(fresh);
        EXPECT_EQ(id, v);
    }
    for (std::uint64_t v = 0; v < n; ++v) {
        const auto s = counterState(stride, v);
        const auto [id, fresh] = store.intern(s.data());
        EXPECT_FALSE(fresh);
        EXPECT_EQ(id, v);
        EXPECT_EQ(std::memcmp(
                      store.at(static_cast<std::uint32_t>(v)),
                      s.data(), stride),
                  0);
    }
    EXPECT_EQ(store.size(), n);
    // Everything landed behind one probe start, so the histogram's
    // far buckets must have absorbed the linear-probe walks.
    std::uint64_t beyondDirect = 0;
    for (std::size_t b = 1; b < StateStore::kProbeBuckets; ++b)
        beyondDirect += store.probeHistogram()[b];
    EXPECT_EQ(beyondDirect, n - 1);
}

TEST(StateStore, GrowthAcrossSlabBoundaries)
{
    // Far more states than the first slab holds: interning must walk
    // across several geometric slabs with at()/copyTo() staying
    // byte-exact for every id ever issued (slabs never move).
    constexpr std::size_t stride = 11;
    StateStore store(stride);
    constexpr std::uint64_t n = 20'000;
    std::vector<const std::uint8_t *> ptrs;
    ptrs.reserve(n);
    for (std::uint64_t v = 0; v < n; ++v) {
        const auto s = counterState(stride, v);
        const auto [id, fresh] = store.intern(s.data());
        ASSERT_TRUE(fresh);
        ASSERT_EQ(id, v);
        ptrs.push_back(store.at(static_cast<std::uint32_t>(v)));
    }
    EXPECT_EQ(store.size(), n);
    VState out;
    for (std::uint64_t v = 0; v < n; ++v) {
        // Pointer stability: the address recorded at intern time is
        // still the state's address after every later growth.
        EXPECT_EQ(store.at(static_cast<std::uint32_t>(v)),
                  ptrs[static_cast<std::size_t>(v)]);
        store.copyTo(static_cast<std::uint32_t>(v), out);
        EXPECT_EQ(out, counterState(stride, v));
    }
    EXPECT_GT(store.memoryBytes(), n * stride);
}

TEST(StateStore, ReserveIsIdempotentAndHonored)
{
    constexpr std::size_t stride = 3;
    StateStore store(stride, 1'000);
    const std::uint64_t cap = store.tableCapacity();
    EXPECT_GT(cap * 3 / 4, 1'000u);
    store.reserve(500); // smaller than current capacity: no-op
    EXPECT_EQ(store.tableCapacity(), cap);
    store.reserve(4'000);
    EXPECT_GT(store.tableCapacity() * 3 / 4, 4'000u);
    for (std::uint64_t v = 0; v < 100; ++v)
        store.intern(counterState(stride, v).data());
    EXPECT_EQ(store.size(), 100u);
}

TEST(StateStore, ConcurrentShardedInterningIsRaceFree)
{
    // Mirror the parallel explorer's discipline: intern under a
    // per-shard mutex, then read the published arena bytes from
    // OTHER threads without that lock (ids handed over through a
    // results mutex, exactly like its work queues). TSan must stay
    // quiet and every state must come back byte-exact.
    constexpr std::size_t stride = 9;
    constexpr std::size_t kShards = 4;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t perThread = 4'000;

    struct Shard
    {
        std::mutex mu;
        StateStore store{stride};
    };
    std::vector<Shard> shards(kShards);
    std::mutex resultsMu;
    // (shard, id, value) triples published by the interning threads.
    std::vector<std::tuple<std::size_t, std::uint32_t, std::uint64_t>>
        published;

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            for (std::uint64_t k = 0; k < perThread; ++k) {
                // Overlapping value ranges across threads, so dedup
                // races on equal states are exercised too.
                const std::uint64_t v = (t * perThread) / 2 + k;
                const auto s = counterState(stride, v);
                const std::uint64_t h = stateHash(s.data(), stride);
                const std::size_t sh =
                    static_cast<std::size_t>(h) % kShards;
                std::uint32_t id;
                bool fresh;
                {
                    std::lock_guard<std::mutex> g(shards[sh].mu);
                    std::tie(id, fresh) =
                        shards[sh].store.internHashed(s.data(), h);
                }
                if (fresh) {
                    std::lock_guard<std::mutex> g(resultsMu);
                    published.emplace_back(sh, id, v);
                }
                // Read someone else's published state WITHOUT the
                // shard lock while interning continues elsewhere —
                // the explorer does exactly this when expanding a
                // frontier item. The id handover through resultsMu
                // is the happens-before edge.
                if (k % 16 == 0) {
                    std::tuple<std::size_t, std::uint32_t,
                               std::uint64_t>
                        pick;
                    bool have = false;
                    {
                        std::lock_guard<std::mutex> g(resultsMu);
                        if (!published.empty()) {
                            pick = published[static_cast<std::size_t>(
                                (t + k) % published.size())];
                            have = true;
                        }
                    }
                    if (have) {
                        const auto &[psh, pid, pv] = pick;
                        EXPECT_EQ(
                            std::memcmp(
                                shards[psh].store.at(pid),
                                counterState(stride, pv).data(),
                                stride),
                            0);
                    }
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // Lock-free reads after the handover, like a worker expanding a
    // stolen frontier item.
    std::set<std::uint64_t> values;
    for (const auto &[sh, id, v] : published) {
        EXPECT_EQ(std::memcmp(shards[sh].store.at(id),
                              counterState(stride, v).data(), stride),
                  0);
        EXPECT_TRUE(values.insert(v).second)
            << "value " << v << " interned fresh twice";
    }
    std::uint64_t total = 0;
    for (auto &sh : shards)
        total += sh.store.size();
    EXPECT_EQ(total, published.size());
    EXPECT_EQ(total, values.size());
}

// ---------------------------------------------------------------------
// Batch interning (internBatchHashed) — the parallel explorer's
// shard-group path. Property: interning N states as one batch is
// id-for-id and inserted-for-inserted IDENTICAL to N single
// internHashed calls, including duplicates within a batch, batches
// that straddle arena-slab boundaries, and the Delta tier's
// base-relative records.
// ---------------------------------------------------------------------

TEST(StateStore, BatchInternMatchesSinglesIdForId)
{
    const std::size_t stride = 16;
    for (const StoreTier tier : {StoreTier::Plain, StoreTier::Delta}) {
        StoreTierOptions opts;
        opts.tier = tier;
        StateStore batched(stride, 0, nullptr, opts);
        StateStore singly(stride, 0, nullptr, opts);

        // A shared delta base, interned first in both stores.
        const auto base = counterState(stride, 0xb00f);
        const std::uint64_t baseHash = stateHash(base.data(), stride);
        ASSERT_EQ(batched.internHashed(base.data(), baseHash),
                  singly.internHashed(base.data(), baseHash));

        // ~1500 distinct states (well past the first slab) with
        // deliberate repeats: i%7==3 duplicates its predecessor
        // (in-batch dup), and the second half replays the first
        // (cross-batch dup).
        constexpr std::size_t kTotal = 3000;
        std::vector<std::vector<std::uint8_t>> states;
        states.reserve(kTotal);
        for (std::size_t i = 0; i < kTotal; ++i) {
            const std::uint64_t v =
                (i % 7 == 3 && i > 0) ? (i - 1) % 1500 : i % 1500;
            states.push_back(counterState(stride, 0x1000 + v));
        }

        // Varying group sizes (1..37) so batches land on every slab
        // boundary alignment; alternate between the explicit base and
        // the kNoId fallback like cross-shard groups do.
        std::size_t i = 0;
        std::size_t gsz = 1;
        bool useBase = true;
        std::vector<const std::uint8_t *> ptrs;
        std::vector<std::uint64_t> hashes;
        std::vector<std::pair<std::uint32_t, bool>> out;
        while (i < kTotal) {
            const std::size_t n = std::min(gsz, kTotal - i);
            ptrs.resize(n);
            hashes.resize(n);
            out.resize(n);
            for (std::size_t k = 0; k < n; ++k) {
                ptrs[k] = states[i + k].data();
                hashes[k] = stateHash(ptrs[k], stride);
            }
            const std::uint32_t baseId =
                useBase ? 0 : StateStore::kNoId;
            const std::uint8_t *baseBytes =
                useBase ? base.data() : nullptr;
            batched.internBatchHashed(ptrs.data(), hashes.data(), n,
                                      baseId, baseBytes, out.data());
            for (std::size_t k = 0; k < n; ++k) {
                const auto single = singly.internHashed(
                    ptrs[k], hashes[k], baseId, baseBytes);
                ASSERT_EQ(out[k].first, single.first)
                    << storeTierName(tier) << " id diverged at state "
                    << (i + k);
                ASSERT_EQ(out[k].second, single.second)
                    << storeTierName(tier)
                    << " inserted flag diverged at state " << (i + k);
            }
            i += n;
            gsz = gsz % 37 + 1;
            useBase = !useBase;
        }
        ASSERT_EQ(batched.size(), singly.size());
        ASSERT_GT(batched.size(), 1024u)
            << "fixture no longer crosses the first slab boundary";

        // Byte-exact reconstruction through both stores (the Delta
        // tier decodes base-relative records here).
        VState a, b;
        for (std::uint32_t id = 0; id < batched.size(); id += 97) {
            batched.copyTo(id, a);
            singly.copyTo(id, b);
            ASSERT_EQ(a, b) << storeTierName(tier) << " id " << id;
        }
    }
}

TEST(StateStore, LookupHashedProbesWithoutInserting)
{
    const std::size_t stride = 8;
    StateStore store(stride);
    const auto s1 = counterState(stride, 41);
    const auto s2 = counterState(stride, 42);
    const std::uint64_t h1 = stateHash(s1.data(), stride);
    const std::uint64_t h2 = stateHash(s2.data(), stride);

    EXPECT_EQ(store.lookupHashed(s1.data(), h1), StateStore::kNoId);
    EXPECT_EQ(store.size(), 0u) << "lookup must not insert";

    const auto [id1, fresh] = store.internHashed(s1.data(), h1);
    EXPECT_TRUE(fresh);
    EXPECT_EQ(store.lookupHashed(s1.data(), h1), id1);
    EXPECT_EQ(store.lookupHashed(s2.data(), h2), StateStore::kNoId);
    EXPECT_EQ(store.size(), 1u);
}
