/**
 * @file
 * NeoMESI "assumes an interconnection network that does not support
 * point-to-point ordering" (§3.2) — which is why its directories
 * block. This suite runs the verified protocols under randomized
 * per-message jitter (true reordering on every link) and requires
 * full completion and coherence. The NS comparison protocols are
 * exempt: they are the unverifiable ones, and their direct-forwarding
 * shortcuts do assume delivery ordering.
 */

#include <gtest/gtest.h>

#include <functional>

#include "core/system.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

using namespace neo;
using namespace neo::test;

namespace
{

using JitterParam = std::tuple<ProtocolVariant, unsigned>;

class UnorderedNetwork : public ::testing::TestWithParam<JitterParam>
{
};

TEST_P(UnorderedNetwork, VerifiedProtocolsTolerateReordering)
{
    const auto [variant, jitter] = GetParam();
    EventQueue eventq;
    HierarchySpec spec = tinyTree(variant, 2, 3);
    spec.network.maxJitter = jitter;
    spec.network.jitterSeed = jitter * 131 + 7;
    System system(spec, eventq);

    const auto cores = static_cast<unsigned>(system.numL1s());
    Random rng(42);
    std::vector<unsigned> left(cores, 400);
    unsigned done = 0;
    std::function<void(unsigned)> issue = [&](unsigned c) {
        if (left[c] == 0) {
            ++done;
            return;
        }
        --left[c];
        system.l1(c).coreRequest(rng.below(24) * 64, rng.chance(0.5),
                                 [&issue, c] { issue(c); });
    };
    for (unsigned c = 0; c < cores; ++c)
        issue(c);
    eventq.run(maxTick, 80'000'000);

    ASSERT_TRUE(eventq.empty()) << "deadlock under reordering";
    EXPECT_EQ(done, cores);
    const auto v = system.checker().check();
    for (const auto &s : v)
        ADD_FAILURE() << s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnorderedNetwork,
    ::testing::Combine(::testing::Values(ProtocolVariant::TreeMSI,
                                         ProtocolVariant::NeoMESI),
                       ::testing::Values(1u, 3u, 7u, 15u)),
    [](const ::testing::TestParamInfo<JitterParam> &info) {
        std::string n = protocolName(std::get<0>(info.param));
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + "_jitter" + std::to_string(std::get<1>(info.param));
    });

} // namespace
