/**
 * @file
 * Shared helpers for protocol tests: tiny hierarchies that force
 * evictions and conflicts quickly, plus a driver that runs the event
 * queue to quiescence.
 */

#ifndef NEO_TESTS_TEST_UTIL_HPP
#define NEO_TESTS_TEST_UTIL_HPP

#include <functional>

#include "core/system.hpp"
#include "sim/event_queue.hpp"

namespace neo::test
{

/** Small geometries so capacity effects appear within a few ops. */
inline CacheGeometry
tinyL1()
{
    return CacheGeometry{8 * 64, 2, 64, 2}; // 8 blocks, 2-way
}

inline CacheGeometry
tinyL2()
{
    return CacheGeometry{32 * 64, 4, 64, 6}; // 32 blocks
}

inline CacheGeometry
tinyL3()
{
    return CacheGeometry{128 * 64, 8, 64, 16}; // 128 blocks
}

/** A 2-level tree: root -> n_l2 dirs -> n_l1 leaves each. */
inline HierarchySpec
tinyTree(ProtocolVariant v, unsigned n_l2, unsigned n_l1)
{
    HierarchySpec spec;
    spec.name = "tiny";
    spec.protocol = v;
    spec.root.geom = tinyL3();
    for (unsigned i = 0; i < n_l2; ++i) {
        TreeNodeSpec l2{tinyL2(), {}};
        for (unsigned j = 0; j < n_l1; ++j)
            l2.children.push_back(TreeNodeSpec{tinyL1(), {}});
        spec.root.children.push_back(l2);
    }
    spec.dramBytes = 1 << 20;
    spec.dramLatency = 20;
    return spec;
}

/** A 3-level unbalanced tree exercising depth and asymmetry. */
inline HierarchySpec
deepTree(ProtocolVariant v)
{
    HierarchySpec spec;
    spec.name = "deep";
    spec.protocol = v;
    spec.root.geom = tinyL3();
    // Subtree A: a mid-level dir with two L2s of two L1s each.
    TreeNodeSpec mid{tinyL3(), {}};
    for (unsigned i = 0; i < 2; ++i) {
        TreeNodeSpec l2{tinyL2(), {}};
        l2.children.push_back(TreeNodeSpec{tinyL1(), {}});
        l2.children.push_back(TreeNodeSpec{tinyL1(), {}});
        mid.children.push_back(l2);
    }
    spec.root.children.push_back(mid);
    // Subtree B: a bare L2 with three L1s.
    TreeNodeSpec l2{tinyL2(), {}};
    for (unsigned i = 0; i < 3; ++i)
        l2.children.push_back(TreeNodeSpec{tinyL1(), {}});
    spec.root.children.push_back(l2);
    // Subtree C: a single L1 directly under... the theory wants leaves
    // under directories, so give it a private L2.
    TreeNodeSpec solo{tinyL2(), {TreeNodeSpec{tinyL1(), {}}}};
    spec.root.children.push_back(solo);
    spec.dramBytes = 1 << 20;
    spec.dramLatency = 20;
    return spec;
}

/** Run the queue until it drains or max_events pass.
 *  @return true if it drained (reached quiescence). */
inline bool
settle(EventQueue &eventq, std::uint64_t max_events = 1'000'000)
{
    eventq.run(maxTick, max_events);
    return eventq.empty();
}

/** Issue a blocking access and settle. @return true on completion. */
inline bool
access(EventQueue &eventq, L1Controller &l1, Addr addr, bool write)
{
    bool done = false;
    l1.coreRequest(addr, write, [&done]() { done = true; });
    settle(eventq);
    return done;
}

} // namespace neo::test

#endif // NEO_TESTS_TEST_UTIL_HPP
