/**
 * @file
 * Model checker + protocol model tests: the §2.5 antecedents must
 * verify for the verifiable feature sets, seeded bugs must be caught
 * (a checker that cannot fail proves nothing), the theory-prohibited
 * non-sibling forwarding must fail the Safe Composition Invariant,
 * and the parametric sweep must converge to a cutoff.
 */

#include <gtest/gtest.h>

#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/parametric.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

ExploreLimits
testLimits()
{
    ExploreLimits lim;
    lim.maxStates = 5'000'000;
    lim.maxSeconds = 120.0;
    return lim;
}

class ClosedSafety
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{
};

TEST_P(ClosedSafety, Verifies)
{
    const auto [n, preset] = GetParam();
    VerifFeatures f;
    if (std::string(preset) == "msi")
        f = VerifFeatures::baselineMSI();
    else if (std::string(preset) == "msi_incl")
        f = VerifFeatures::inclusiveMSI();
    else
        f = VerifFeatures::neoMESI();
    ModelShape shape;
    TransitionSystem ts =
        buildClosedModel(static_cast<std::size_t>(n), f, shape);
    const ExploreResult r = explore(ts, testLimits());
    EXPECT_EQ(r.status, VerifStatus::Verified)
        << verifStatusName(r.status) << " " << r.violatedInvariant
        << "\nstate: " << r.badState << "\ntrace:\n"
        << [&] {
               std::string t;
               for (const auto &s : r.trace)
                   t += "  " + s + "\n";
               return t;
           }();
    EXPECT_GT(r.statesExplored, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedSafety,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values("msi", "msi_incl", "neomesi")),
    [](const auto &info) {
        return std::string(std::get<1>(info.param)) + "_N" +
               std::to_string(std::get<0>(info.param));
    });

TEST(ClosedSafety, StateCountGrowsWithFeatures)
{
    ModelShape shape;
    const auto msi = explore(
        buildClosedModel(2, VerifFeatures::baselineMSI(), shape),
        testLimits());
    const auto incl = explore(
        buildClosedModel(2, VerifFeatures::inclusiveMSI(), shape),
        testLimits());
    const auto mesi = explore(
        buildClosedModel(2, VerifFeatures::neoMESI(), shape),
        testLimits());
    ASSERT_EQ(msi.status, VerifStatus::Verified);
    ASSERT_EQ(incl.status, VerifStatus::Verified);
    ASSERT_EQ(mesi.status, VerifStatus::Verified);
    // Each §4.2 feature adds transitions and states.
    EXPECT_GT(incl.statesExplored, msi.statesExplored);
    EXPECT_GT(mesi.statesExplored, incl.statesExplored);
}

class OpenSafety : public ::testing::TestWithParam<int>
{
};

TEST_P(OpenSafety, NeoMESIVerifies)
{
    ModelShape shape;
    TransitionSystem ts = buildOpenModel(
        static_cast<std::size_t>(GetParam()),
        VerifFeatures::neoMESI(), CompositionMethod::None, shape);
    const ExploreResult r = explore(ts, testLimits());
    EXPECT_EQ(r.status, VerifStatus::Verified)
        << verifStatusName(r.status) << " " << r.violatedInvariant
        << "\nstate: " << r.badState << "\ntrace:\n"
        << [&] {
               std::string t;
               for (const auto &s : r.trace)
                   t += "  " + s + "\n";
               return t;
           }();
}

TEST_P(OpenSafety, CompositionModifiedVerifies)
{
    ModelShape shape;
    TransitionSystem ts = buildOpenModel(
        static_cast<std::size_t>(GetParam()),
        VerifFeatures::neoMESI(), CompositionMethod::Modified, shape);
    const ExploreResult r = explore(ts, testLimits());
    EXPECT_EQ(r.status, VerifStatus::Verified)
        << verifStatusName(r.status) << " " << r.violatedInvariant
        << "\nstate: " << r.badState << "\ntrace:\n"
        << [&] {
               std::string t;
               for (const auto &s : r.trace)
                   t += "  " + s + "\n";
               return t;
           }();
}

INSTANTIATE_TEST_SUITE_P(Sweep, OpenSafety, ::testing::Values(1, 2, 3),
                         [](const auto &info) {
                             return "N" + std::to_string(info.param);
                         });

TEST(Composition, NonSiblingForwardingFailsTheInvariant)
{
    // §4.2.1: non-sibling communication is prohibited by the theory —
    // the Omega output it introduces has no matching leaf transition.
    VerifFeatures f = VerifFeatures::neoMESI();
    f.nonSiblingFwd = true;
    ModelShape shape;
    TransitionSystem ts =
        buildOpenModel(2, f, CompositionMethod::Modified, shape);
    const ExploreResult r = explore(ts, testLimits());
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    EXPECT_EQ(r.violatedInvariant, "SafeComposition_LcouldFire");
    EXPECT_FALSE(r.trace.empty());
}

TEST(Composition, OriginalMethodologyAgreesButCostsMore)
{
    ModelShape shape;
    const auto modified = explore(
        buildOpenModel(2, VerifFeatures::neoMESI(),
                       CompositionMethod::Modified, shape),
        testLimits());
    const auto original = explore(
        buildOpenModel(2, VerifFeatures::neoMESI(),
                       CompositionMethod::Original, shape),
        testLimits());
    ASSERT_EQ(modified.status, VerifStatus::Verified);
    ASSERT_EQ(original.status, VerifStatus::Verified)
        << original.violatedInvariant << "\n"
        << original.badState;
    // §4.1.2: the alternating product explores a much larger space.
    EXPECT_GT(original.statesExplored, modified.statesExplored);
}

TEST(MutationTesting, DroppedInvalidationIsCaught)
{
    // Push-button means nothing if the oracle cannot fail: seed the
    // classic bug — grant M without invalidating sharers — and the
    // checker must produce a counterexample.
    ModelShape shape;
    TransitionSystem ts =
        buildClosedModel(2, VerifFeatures::neoMESI(), shape);
    // A rogue rule: grant M to a leaf in IM_D without any protocol.
    // The first variable of the first leaf block is its cache state.
    const std::size_t leaf0_c = shape.sharedVars;
    ts.addRule(
        "BUG_grant_without_inv", ActionKind::Internal,
        [leaf0_c](const VState &s) { return s[leaf0_c] == C_IMD; },
        [leaf0_c](VState &s) { s[leaf0_c] = C_M; });
    const ExploreResult r = explore(ts, testLimits());
    EXPECT_EQ(r.status, VerifStatus::InvariantViolated);
    // Either the safety sum or the bookkeeping invariant trips first.
    EXPECT_FALSE(r.violatedInvariant.empty());
    EXPECT_FALSE(r.trace.empty());
}

TEST(Parametric, ClosedNeoMESIConverges)
{
    const ParametricResult r = verifyParametric(
        closedModelFactory(VerifFeatures::neoMESI()), 1, 6,
        testLimits());
    EXPECT_EQ(r.status, VerifStatus::Verified);
    EXPECT_TRUE(r.converged) << r.detail;
    if (r.converged)
        EXPECT_LE(r.cutoff, 5u);
}

TEST(Parametric, OpenNeoMESIConverges)
{
    // The safety-only open model (the composition variants add spec
    // dimensions and are swept by the sec4 bench with bigger bounds).
    // Convergence is detected at N=6, which needs ~6.2M states.
    ExploreLimits lim;
    lim.maxStates = 8'000'000;
    lim.maxSeconds = 400.0;
    const ParametricResult r = verifyParametric(
        openModelFactory(VerifFeatures::neoMESI(),
                         CompositionMethod::None),
        1, 6, lim);
    EXPECT_EQ(r.status, VerifStatus::Verified) << r.detail;
    EXPECT_TRUE(r.converged) << r.detail;
}

} // namespace
