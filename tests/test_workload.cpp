/**
 * @file
 * Unit tests for the synthetic workload generators: determinism,
 * address-region separation, parameter adherence, PARSEC presets.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/workload.hpp"

using namespace neo;

namespace
{

WorkloadParams
basicParams()
{
    WorkloadParams p;
    p.privateBlocksPerCore = 16;
    p.sharedBlocks = 8;
    p.sharedFraction = 0.5;
    return p;
}

TEST(Workload, DeterministicPerSeed)
{
    WorkloadGen a(basicParams(), 4, 64, 99);
    WorkloadGen b(basicParams(), 4, 64, 99);
    for (int i = 0; i < 200; ++i) {
        const MemOp x = a.next(i % 4);
        const MemOp y = b.next(i % 4);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.write, y.write);
        EXPECT_EQ(x.think, y.think);
    }
}

TEST(Workload, PrivateRegionsDoNotOverlap)
{
    WorkloadParams p = basicParams();
    p.sharedFraction = 0.0; // private only
    WorkloadGen gen(p, 4, 64, 1);
    std::set<Addr> per_core[4];
    for (int i = 0; i < 2000; ++i) {
        const CoreId c = i % 4;
        per_core[c].insert(gen.next(c).addr);
    }
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            for (Addr addr : per_core[a])
                EXPECT_EQ(per_core[b].count(addr), 0u)
                    << "cores " << a << "/" << b << " overlap";
        }
    }
}

TEST(Workload, SharedRegionIsShared)
{
    WorkloadParams p = basicParams();
    p.sharedFraction = 1.0; // shared only
    WorkloadGen gen(p, 4, 64, 1);
    std::set<Addr> seen[2];
    for (int i = 0; i < 500; ++i) {
        seen[0].insert(gen.next(0).addr);
        seen[1].insert(gen.next(1).addr);
    }
    // With only 8 shared blocks both cores must collide heavily.
    unsigned common = 0;
    for (Addr a : seen[0])
        common += seen[1].count(a);
    EXPECT_GT(common, 4u);
    // And all addresses sit above every private region.
    const Addr shared_base = 4ull * p.privateBlocksPerCore * 64;
    for (Addr a : seen[0])
        EXPECT_GE(a, shared_base);
}

TEST(Workload, SharedFractionRespected)
{
    WorkloadParams p = basicParams();
    p.sharedFraction = 0.3;
    WorkloadGen gen(p, 2, 64, 5);
    const Addr shared_base = 2ull * p.privateBlocksPerCore * 64;
    int shared = 0;
    constexpr int n = 20'000;
    for (int i = 0; i < n; ++i)
        shared += gen.next(0).addr >= shared_base ? 1 : 0;
    EXPECT_NEAR(shared / static_cast<double>(n), 0.3, 0.02);
}

TEST(Workload, WriteFractionsRespected)
{
    WorkloadParams p = basicParams();
    p.sharedFraction = 0.0;
    p.privateWriteFraction = 0.7;
    WorkloadGen gen(p, 1, 64, 5);
    int writes = 0;
    constexpr int n = 20'000;
    for (int i = 0; i < n; ++i)
        writes += gen.next(0).write ? 1 : 0;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.7, 0.02);
}

TEST(Workload, AddressesAreBlockAligned)
{
    WorkloadGen gen(basicParams(), 4, 64, 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next(i % 4).addr % 64, 0u);
}

TEST(Workload, NeighborPatternStaysLocal)
{
    WorkloadParams p = basicParams();
    p.sharedBlocks = 64;
    p.sharedFraction = 1.0;
    p.pattern = SharingPattern::Neighbor;
    WorkloadGen gen(p, 8, 64, 9);
    // Core 0's draws must fall in the slices of stages 0 and 1.
    const Addr shared_base = 8ull * p.privateBlocksPerCore * 64;
    const std::uint64_t slice = 64 / 8;
    for (int i = 0; i < 500; ++i) {
        const Addr a = gen.next(0).addr;
        const std::uint64_t blk = (a - shared_base) / 64;
        EXPECT_LT(blk / slice, 2u) << "core 0 drew from stage "
                                   << blk / slice;
    }
}

TEST(Workload, ParsecSuiteComplete)
{
    const auto suite = parsecSuite();
    ASSERT_EQ(suite.size(), 7u);
    const char *expected[] = {"blackscholes", "bodytrack", "canneal",
                              "dedup",        "facesim",   "swaptions",
                              "x264"};
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
    // Relative characterization preserved: canneal shares the most,
    // swaptions the least; facesim has the largest private WSS.
    const auto canneal = parsecProfile("canneal");
    const auto swaptions = parsecProfile("swaptions");
    const auto facesim = parsecProfile("facesim");
    EXPECT_GT(canneal.sharedFraction, swaptions.sharedFraction);
    for (const auto &p : suite)
        EXPECT_LE(p.privateBlocksPerCore,
                  facesim.privateBlocksPerCore);
}

TEST(Workload, MigratoryBurstsAreExclusive)
{
    WorkloadParams p = basicParams();
    p.sharedBlocks = 4;
    p.sharedFraction = 1.0;
    p.pattern = SharingPattern::Migratory;
    p.migratoryBurst = 4;
    WorkloadGen gen(p, 2, 64, 11);
    // Just exercise it for crashes/determinism and alignment.
    for (int i = 0; i < 1000; ++i) {
        const MemOp op = gen.next(i % 2);
        EXPECT_EQ(op.addr % 64, 0u);
    }
}

} // namespace
