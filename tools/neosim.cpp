/**
 * @file
 * neosim — command-line driver for the hierarchy simulator.
 *
 * Examples:
 *   neosim --org 2perL2 --protocol NeoMESI --benchmark canneal
 *   neosim --org skewed --protocol NS-MOESI --ops 10000 --trials 5
 *   neosim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/sim_runner.hpp"
#include "sim/cli_parse.hpp"
#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "workload/workload.hpp"

using namespace neo;

namespace
{

void
usage()
{
    std::printf(
        "usage: neosim [options]\n"
        "  --org NAME        skewed | 2perL2 | 8perL2  (default 2perL2)\n"
        "  --protocol NAME   TreeMSI | NeoMESI | NS-MESI | NS-MOESI\n"
        "                    (default NeoMESI)\n"
        "  --benchmark NAME  a PARSEC-like preset      (default canneal)\n"
        "  --ops N           memory ops per core       (default 5000)\n"
        "  --seed N          base RNG seed             (default 1)\n"
        "  --trials N        perturbed trials          (default 1)\n"
        "  --no-check        skip the end-of-run coherence checker\n"
        "  --stats           dump every controller/network statistic\n"
        "  --list            list organizations, protocols, benchmarks\n"
        "fault injection (see README, 'Fault injection'):\n"
        "  --drop-prob P     per-message drop probability   (default 0)\n"
        "  --dup-prob P      per-message duplicate probability\n"
        "  --delay-prob P    heavy-tail delay-spike probability\n"
        "  --delay-mean N    mean spike length in ticks     (default 256)\n"
        "  --delay-cap N     max single spike in ticks      (default 8192)\n"
        "  --fault-seed N    fault-schedule RNG seed        (default 1)\n"
        "  --blackout SPEC   NODE,up|down,T0[,T1]; omit T1 for a\n"
        "                    permanently severed link (repeatable)\n"
        "  --timeout N       L1 reissue timeout in ticks (0 = default)\n"
        "  --max-retries N   reissue attempts before giving up\n"
        "  --watchdog W      no-progress watchdog window in ticks\n"
        "  --campaign N      run N runs with fault seeds seed..seed+N-1\n"
        "exit codes: 0 clean, 1 coherence violation, 2 usage error,\n"
        "            3 quiescent deadlock, 4 watchdog fired\n"
        "            (unified across tools; see exit_codes.hpp —\n"
        "             neoverify adds 5 = interrupted, resumable)\n");
}

double
parseProbOrDie(const std::string &opt, const std::string &text)
{
    const double p = parseF64OrDie(opt, text);
    if (p < 0.0 || p > 1.0)
        neo_fatal(opt, ": probability must be in [0, 1], got ", text);
    return p;
}

/** Parse "NODE,up|down,T0[,T1]"; T1 omitted means permanent. */
LinkBlackout
parseBlackoutOrDie(const std::string &spec)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : spec) {
        if (c == ',') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    if (parts.size() < 3 || parts.size() > 4)
        neo_fatal("--blackout: expected NODE,up|down,T0[,T1], got ",
                  spec);
    LinkBlackout b;
    b.childEnd = static_cast<NodeId>(
        parseU64OrDie("--blackout NODE", parts[0]));
    if (parts[1] == "up")
        b.upward = true;
    else if (parts[1] == "down")
        b.upward = false;
    else
        neo_fatal("--blackout: direction must be up or down, got ",
                  parts[1]);
    b.begin = parseU64OrDie("--blackout T0", parts[2]);
    b.end = parts.size() == 4 ? parseU64OrDie("--blackout T1", parts[3])
                              : maxTick;
    if (b.end != maxTick && b.end <= b.begin)
        neo_fatal("--blackout: T1 must be > T0 in ", spec);
    return b;
}

ProtocolVariant
parseProtocol(const std::string &s)
{
    if (s == "TreeMSI")
        return ProtocolVariant::TreeMSI;
    if (s == "NeoMESI")
        return ProtocolVariant::NeoMESI;
    if (s == "NS-MESI")
        return ProtocolVariant::NSMESI;
    if (s == "NS-MOESI")
        return ProtocolVariant::NSMOESI;
    neo_fatal("unknown protocol: ", s);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string org = "2perL2";
    std::string protocol = "NeoMESI";
    std::string benchmark = "canneal";
    RunConfig cfg;
    cfg.opsPerCore = 5000;
    cfg.seed = 1;
    unsigned trials = 1;
    std::uint64_t campaign = 0;

    // Writing stats into a closed pipe (| head) must surface as an
    // EPIPE error path, not a silent SIGPIPE kill.
    ignoreSigpipe();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                neo_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--org") {
            org = next();
        } else if (arg == "--protocol") {
            protocol = next();
        } else if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--ops") {
            cfg.opsPerCore = parseU64OrDie(arg, next());
        } else if (arg == "--seed") {
            cfg.seed = parseU64OrDie(arg, next());
        } else if (arg == "--trials") {
            trials =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
        } else if (arg == "--no-check") {
            cfg.checkCoherence = false;
        } else if (arg == "--drop-prob") {
            cfg.faults.dropProb = parseProbOrDie(arg, next());
        } else if (arg == "--dup-prob") {
            cfg.faults.dupProb = parseProbOrDie(arg, next());
        } else if (arg == "--delay-prob") {
            cfg.faults.delayProb = parseProbOrDie(arg, next());
        } else if (arg == "--delay-mean") {
            cfg.faults.delayMean = parseU64OrDie(arg, next());
        } else if (arg == "--delay-cap") {
            cfg.faults.delayCap = parseU64OrDie(arg, next());
        } else if (arg == "--fault-seed") {
            cfg.faults.seed = parseU64OrDie(arg, next());
        } else if (arg == "--blackout") {
            cfg.faults.blackouts.push_back(parseBlackoutOrDie(next()));
        } else if (arg == "--timeout") {
            cfg.recovery.timeout = parseU64OrDie(arg, next());
        } else if (arg == "--max-retries") {
            cfg.recovery.maxRetries =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
        } else if (arg == "--watchdog") {
            cfg.watchdogInterval = parseU64OrDie(arg, next());
        } else if (arg == "--campaign") {
            campaign = parseU64OrDie(arg, next());
        } else if (arg == "--stats") {
            cfg.dumpStats = true;
        } else if (arg == "--list") {
            std::printf("organizations: skewed 2perL2 8perL2\n");
            std::printf(
                "protocols:     TreeMSI NeoMESI NS-MESI NS-MOESI\n");
            std::printf("benchmarks:   ");
            for (const auto &p : parsecSuite())
                std::printf(" %s", p.name.c_str());
            std::printf("\n");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    setQuiet(true);
    const HierarchySpec spec =
        organizationByName(org, parseProtocol(protocol));
    const WorkloadParams wl = parsecProfile(benchmark);

    std::printf("neosim: %s / %s / %s, %llu ops/core, %u trial(s)\n",
                org.c_str(), protocol.c_str(), benchmark.c_str(),
                static_cast<unsigned long long>(cfg.opsPerCore),
                trials);

    if (campaign > 0) {
        // Fault campaign: same workload, fault seeds base..base+N-1.
        std::uint64_t clean = 0, recovered = 0, deadlocked = 0,
                      violated = 0, wd_fired = 0;
        double latency_sum = 0.0;
        std::uint64_t latency_n = 0;
        int worst = 0;
        const std::uint64_t base = cfg.faults.seed;
        std::printf("%-6s %-10s %8s %8s %8s %8s\n", "run",
                    "outcome", "retries", "stale", "dups", "drops");
        for (std::uint64_t k = 0; k < campaign; ++k) {
            RunConfig run_cfg = cfg;
            run_cfg.faults.seed = base + k;
            const RunResult r = runOnce(spec, wl, run_cfg);
            const int code = exitCodeFor(r);
            const char *outcome = "clean";
            if (code == 1) {
                ++violated;
                outcome = "VIOLATED";
            } else if (code == 4) {
                ++wd_fired;
                ++deadlocked;
                outcome = "watchdog";
            } else if (code == 3) {
                ++deadlocked;
                outcome = "deadlock";
            } else if (r.retries > 0) {
                ++recovered;
                outcome = "recovered";
            } else {
                ++clean;
            }
            // Severity precedence: violation > watchdog > deadlock.
            auto rank = [](int c) {
                return c == kExitViolation  ? 3
                       : c == kExitWatchdog ? 2
                       : c == kExitDeadlock ? 1
                                            : 0;
            };
            if (rank(code) > rank(worst))
                worst = code;
            latency_sum += r.recoveryLatencyMean *
                           static_cast<double>(r.recoveredTxns);
            latency_n += r.recoveredTxns;
            std::printf("%-6llu %-10s %8llu %8llu %8llu %8llu\n",
                        static_cast<unsigned long long>(k), outcome,
                        static_cast<unsigned long long>(r.retries),
                        static_cast<unsigned long long>(r.staleDrops),
                        static_cast<unsigned long long>(r.faultDups),
                        static_cast<unsigned long long>(r.faultDrops));
        }
        std::printf("campaign: %llu runs, %llu clean, %llu recovered, "
                    "%llu deadlocked (%llu by watchdog), %llu violated\n",
                    static_cast<unsigned long long>(campaign),
                    static_cast<unsigned long long>(clean),
                    static_cast<unsigned long long>(recovered),
                    static_cast<unsigned long long>(deadlocked),
                    static_cast<unsigned long long>(wd_fired),
                    static_cast<unsigned long long>(violated));
        if (latency_n > 0) {
            std::printf("mean recovery latency %.0f ticks over %llu "
                        "recovered transactions\n",
                        latency_sum / static_cast<double>(latency_n),
                        static_cast<unsigned long long>(latency_n));
        }
        return worst;
    }

    if (trials == 1) {
        const RunResult r = runOnce(spec, wl, cfg);
        const auto total = r.l1Hits + r.l1Misses;
        std::printf("runtime (cycles)     %llu\n",
                    static_cast<unsigned long long>(r.runtime));
        std::printf("L1 miss rate         %.2f%%\n",
                    total ? 100.0 * static_cast<double>(r.l1Misses) /
                                static_cast<double>(total)
                          : 0.0);
        std::printf("non-sibling data     %.2f%% of misses\n",
                    100.0 * r.nonSiblingFraction());
        std::printf("blocked arrivals     %.2f%% (L2)  %.2f%% (L3)\n",
                    100.0 * r.blockedL2Fraction(),
                    100.0 * r.blockedL3Fraction());
        std::printf("network messages     %llu\n",
                    static_cast<unsigned long long>(r.networkMessages));
        if (r.retries + r.staleDrops + r.dupDrops + r.redrives > 0 ||
            cfg.faults.enabled()) {
            std::printf("fault recovery       %llu retries, %llu stale "
                        "drops, %llu dup drops, %llu redrives\n",
                        static_cast<unsigned long long>(r.retries),
                        static_cast<unsigned long long>(r.staleDrops),
                        static_cast<unsigned long long>(r.dupDrops),
                        static_cast<unsigned long long>(r.redrives));
            std::printf("faults injected      %llu drops, %llu dups, "
                        "%llu delays, %llu holds\n",
                        static_cast<unsigned long long>(r.faultDrops),
                        static_cast<unsigned long long>(r.faultDups),
                        static_cast<unsigned long long>(r.faultDelays),
                        static_cast<unsigned long long>(r.faultHolds));
        }
        if (r.watchdogFired) {
            std::printf("watchdog fired at tick %llu\n%s",
                        static_cast<unsigned long long>(r.watchdogTick),
                        r.postmortem.c_str());
        } else if (r.deadlocked) {
            std::printf("quiescent deadlock\n%s", r.postmortem.c_str());
        }
        if (cfg.checkCoherence) {
            std::printf("coherence            %s\n",
                        r.deadlocked ? "not checked (run hung)"
                        : r.violations.empty() ? "OK"
                                               : "VIOLATED");
            for (const auto &v : r.violations)
                std::printf("  %s\n", v.c_str());
        }
        return exitCodeFor(r);
    }

    const TrialSummary t = runTrials(spec, wl, cfg, trials);
    std::printf("runtime (cycles)     %.0f +/- %.0f\n",
                t.runtime.mean(), t.runtime.stdev());
    std::printf("L1 miss rate         %.2f%%\n",
                100.0 * t.missRate.mean());
    std::printf("non-sibling data     %.2f%% of misses\n",
                100.0 * t.nonSiblingFraction.mean());
    std::printf("blocked arrivals     %.2f%% (L2)  %.2f%% (L3)\n",
                100.0 * t.blockedL2.mean(), 100.0 * t.blockedL3.mean());
    std::printf("coherence            %s\n",
                t.allCoherent ? "OK in every trial" : "VIOLATED");
    return t.allCoherent ? 0 : 1;
}
