/**
 * @file
 * neosim — command-line driver for the hierarchy simulator.
 *
 * Examples:
 *   neosim --org 2perL2 --protocol NeoMESI --benchmark canneal
 *   neosim --org skewed --protocol NS-MOESI --ops 10000 --trials 5
 *   neosim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/sim_runner.hpp"
#include "sim/cli_parse.hpp"
#include "workload/workload.hpp"

using namespace neo;

namespace
{

void
usage()
{
    std::printf(
        "usage: neosim [options]\n"
        "  --org NAME        skewed | 2perL2 | 8perL2  (default 2perL2)\n"
        "  --protocol NAME   TreeMSI | NeoMESI | NS-MESI | NS-MOESI\n"
        "                    (default NeoMESI)\n"
        "  --benchmark NAME  a PARSEC-like preset      (default canneal)\n"
        "  --ops N           memory ops per core       (default 5000)\n"
        "  --seed N          base RNG seed             (default 1)\n"
        "  --trials N        perturbed trials          (default 1)\n"
        "  --no-check        skip the end-of-run coherence checker\n"
        "  --stats           dump every controller/network statistic\n"
        "  --list            list organizations, protocols, benchmarks\n");
}

ProtocolVariant
parseProtocol(const std::string &s)
{
    if (s == "TreeMSI")
        return ProtocolVariant::TreeMSI;
    if (s == "NeoMESI")
        return ProtocolVariant::NeoMESI;
    if (s == "NS-MESI")
        return ProtocolVariant::NSMESI;
    if (s == "NS-MOESI")
        return ProtocolVariant::NSMOESI;
    neo_fatal("unknown protocol: ", s);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string org = "2perL2";
    std::string protocol = "NeoMESI";
    std::string benchmark = "canneal";
    RunConfig cfg;
    cfg.opsPerCore = 5000;
    cfg.seed = 1;
    unsigned trials = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                neo_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--org") {
            org = next();
        } else if (arg == "--protocol") {
            protocol = next();
        } else if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--ops") {
            cfg.opsPerCore = parseU64OrDie(arg, next());
        } else if (arg == "--seed") {
            cfg.seed = parseU64OrDie(arg, next());
        } else if (arg == "--trials") {
            trials =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
        } else if (arg == "--no-check") {
            cfg.checkCoherence = false;
        } else if (arg == "--stats") {
            cfg.dumpStats = true;
        } else if (arg == "--list") {
            std::printf("organizations: skewed 2perL2 8perL2\n");
            std::printf(
                "protocols:     TreeMSI NeoMESI NS-MESI NS-MOESI\n");
            std::printf("benchmarks:   ");
            for (const auto &p : parsecSuite())
                std::printf(" %s", p.name.c_str());
            std::printf("\n");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    setQuiet(true);
    const HierarchySpec spec =
        organizationByName(org, parseProtocol(protocol));
    const WorkloadParams wl = parsecProfile(benchmark);

    std::printf("neosim: %s / %s / %s, %llu ops/core, %u trial(s)\n",
                org.c_str(), protocol.c_str(), benchmark.c_str(),
                static_cast<unsigned long long>(cfg.opsPerCore),
                trials);

    if (trials == 1) {
        const RunResult r = runOnce(spec, wl, cfg);
        const auto total = r.l1Hits + r.l1Misses;
        std::printf("runtime (cycles)     %llu\n",
                    static_cast<unsigned long long>(r.runtime));
        std::printf("L1 miss rate         %.2f%%\n",
                    total ? 100.0 * static_cast<double>(r.l1Misses) /
                                static_cast<double>(total)
                          : 0.0);
        std::printf("non-sibling data     %.2f%% of misses\n",
                    100.0 * r.nonSiblingFraction());
        std::printf("blocked arrivals     %.2f%% (L2)  %.2f%% (L3)\n",
                    100.0 * r.blockedL2Fraction(),
                    100.0 * r.blockedL3Fraction());
        std::printf("network messages     %llu\n",
                    static_cast<unsigned long long>(r.networkMessages));
        if (cfg.checkCoherence) {
            std::printf("coherence            %s\n",
                        r.violations.empty() && !r.deadlocked
                            ? "OK"
                            : "VIOLATED");
            for (const auto &v : r.violations)
                std::printf("  %s\n", v.c_str());
        }
        return r.violations.empty() && !r.deadlocked ? 0 : 1;
    }

    const TrialSummary t = runTrials(spec, wl, cfg, trials);
    std::printf("runtime (cycles)     %.0f +/- %.0f\n",
                t.runtime.mean(), t.runtime.stdev());
    std::printf("L1 miss rate         %.2f%%\n",
                100.0 * t.missRate.mean());
    std::printf("non-sibling data     %.2f%% of misses\n",
                100.0 * t.nonSiblingFraction.mean());
    std::printf("blocked arrivals     %.2f%% (L2)  %.2f%% (L3)\n",
                100.0 * t.blockedL2.mean(), 100.0 * t.blockedL3.mean());
    std::printf("coherence            %s\n",
                t.allCoherent ? "OK in every trial" : "VIOLATED");
    return t.allCoherent ? 0 : 1;
}
