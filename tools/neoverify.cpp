/**
 * @file
 * neoverify — command-line front end for the push-button verifier.
 *
 * Examples:
 *   neoverify --features neomesi --system open --method modified --n 3
 *   neoverify --features neomesi --parametric
 *   neoverify --features nsmesi --system open --method modified --n 2
 *     (demonstrates the composition failure of non-sibling forwarding)
 *   neoverify --features german --n 4
 *   neoverify --walk --walks 64 --depth 256 --seed 1 --mutant
 *     dir_nonblocking_read --shrink --trace
 *     (random-walk falsification of a corpus mutant, with the raw
 *      counterexample delta-debugged to a locally minimal trace)
 */

#include <cstdio>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "sim/cli_parse.hpp"
#include "sim/exit_codes.hpp"
#include "sim/io_retry.hpp"
#include "verif/checkpoint.hpp"
#include "verif/service/chaos_proxy.hpp"
#include "verif/service/coordinator.hpp"
#include "verif/service/job_queue.hpp"
#include "verif/service/wire.hpp"
#include "verif/service/worker.hpp"
#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/models/mutants.hpp"
#include "verif/parametric.hpp"
#include "verif/random_walk.hpp"
#include "verif/shrink.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

void
usage()
{
    std::printf(
        "usage: neoverify [options]\n"
        "  --features NAME   msi | msi-incl | neomesi | moesi | nsmesi\n"
        "                    | german            (default neomesi)\n"
        "  --system KIND     closed | open       (default open)\n"
        "  --method NAME     none | original | modified\n"
        "                    (default modified; open systems only)\n"
        "  --n N             leaves in the flat instance (default 3)\n"
        "  --parametric      sweep N with cutoff detection instead\n"
        "  --max-states N    state bound          (default 8000000)\n"
        "  --max-seconds S   time bound           (default 600)\n"
        "  --max-memory B    live-memory bound in bytes (default off)\n"
        "  --threads N       exploration workers; >1 uses the sharded\n"
        "                    parallel explorer    (default 1)\n"
        "  --no-rule-index   disable dependency-indexed successor\n"
        "                    generation (guard-skip bitsets, in-place\n"
        "                    firing, canon-identity gating); counts\n"
        "                    and traces are bit-identical either way —\n"
        "                    this is the differential baseline\n"
        "  --trace           print the counterexample, if any\n"
        "capacity tiers (state-store scaling; see README):\n"
        "  --store-tier T    plain | delta; delta stores each state as\n"
        "                    a varint diff against its BFS parent with\n"
        "                    periodic anchors    (default plain)\n"
        "  --anchor-every K  delta anchor stride: any state rebuilds\n"
        "                    in <= K chained diffs (default 8)\n"
        "  --compact-hashes  store 64/128-bit fingerprints ONLY; a\n"
        "                    verified verdict is probabilistic (the\n"
        "                    omission probability is reported) and\n"
        "                    --shrink/--parametric are refused\n"
        "  --compact-bits B  fingerprint width, 64 or 128 (default 64)\n"
        "  --spill-dir DIR   mmap cold store slabs under DIR; memory\n"
        "                    pressure sheds them to disk before trace\n"
        "                    links and long before EXCEEDED\n"
        "  --spill-hot-bytes B  hot-slab LRU budget (default 256M)\n"
        "falsification (random walks instead of exhaustive search):\n"
        "  --walk            run seeded random walks, not reachability\n"
        "  --walks K         independent walks    (default 64)\n"
        "  --depth D         rule firings per walk (default 256)\n"
        "  --seed S          master seed          (default 1)\n"
        "  --shrink          delta-debug the counterexample trace\n"
        "  --mutant NAME     verify a corpus mutant instead of a\n"
        "                    bundled model (see --list-mutants)\n"
        "  --list-mutants    print the mutation corpus and exit\n"
        "crash safety (periodic snapshots + graceful shutdown):\n"
        "  --checkpoint-dir DIR   write CRC-guarded snapshots into DIR;\n"
        "                    SIGINT/SIGTERM drains to a final snapshot\n"
        "                    and exits 5 (interrupted, resumable)\n"
        "  --checkpoint-every S   snapshot interval; accepts s/m/h\n"
        "                    suffixes (default 30s when DIR is set)\n"
        "  --resume          restore the snapshot in DIR and continue\n"
        "                    to the identical fixpoint\n"
        "verification service (crash-only coordinator + workers):\n"
        "  --serve SOCK      run the job coordinator on unix socket\n"
        "                    SOCK; jobs run as sharded worker\n"
        "                    processes and survive SIGKILL of any of\n"
        "                    them (or of the coordinator itself)\n"
        "  --state-dir DIR   journal + partition snapshots\n"
        "                    (default SOCK.state)\n"
        "  --workers N       worker processes per job (default 4)\n"
        "  --heartbeat DUR   supervision ping interval (default 1s)\n"
        "  --job-timeout DUR per-attempt wall budget (default off)\n"
        "  --retries N       attempts before quarantine (default 3)\n"
        "  --backoff DUR     first retry delay, doubling (default .5s)\n"
        "  --checkpoint-every DUR   barrier interval while serving\n"
        "                    (default 5s; 0 disables)\n"
        "  --max-jobs N      attempts run concurrently (default 1);\n"
        "                    each gets its own isolated worker set\n"
        "  --progress-every DUR   streaming progress interval for\n"
        "                    --wait clients (default 1s; 0 disables)\n"
        "  --journal-compact-bytes B   rewrite the journal as one\n"
        "                    snapshot record once it exceeds B\n"
        "                    (default 8M; 0 disables)\n"
        "multi-box worker pools (TCP beside the unix socket):\n"
        "  --listen H:P      also accept TCP; attempts then run in\n"
        "                    star topology (workers dial back and the\n"
        "                    coordinator relays state batches); the\n"
        "                    resolved address lands in\n"
        "                    STATE-DIR/tcp-addr (port 0 = pick one)\n"
        "  --advertise H:P   address workers are told to dial\n"
        "                    (default: the resolved listen address;\n"
        "                    tests point it at a chaos proxy)\n"
        "  --join H:P        run a worker-pool agent: offer this box\n"
        "                    to the coordinator at H:P, fork one\n"
        "                    worker per assignment, reconnect after\n"
        "                    each; --state-dir advertises shared\n"
        "                    partition storage for resume\n"
        "network chaos (deterministic fault-injecting TCP proxy):\n"
        "  --chaos-proxy H:P listen here, forward to --upstream, and\n"
        "                    mangle bytes on the --chaos schedule;\n"
        "                    prints the bound address, runs until\n"
        "                    interrupted, echoes each fault to stderr\n"
        "  --upstream H:P    where the proxy forwards\n"
        "  --chaos SPEC      seed=..,every=..,drop/dup/trunc/sever/\n"
        "                    delay=weights,delayms=..,span=..,skip=..\n"
        "client verbs (need --sock SOCK; composable in this order):\n"
        "  --sock SOCK       coordinator socket: a unix path, or\n"
        "                    host:port to reach it over TCP\n"
        "  --submit          submit the job the model flags describe\n"
        "  --cancel ID       cancel a pending or running job\n"
        "  --drain           finish queued jobs, then exit the server\n"
        "                    (with --serve: exit once queue is empty)\n"
        "  --status          print the job table (running jobs list\n"
        "                    worker pids)\n"
        "  --wait ID         block for job ID's verdict and exit with\n"
        "                    its code (0 = the job --submit just\n"
        "                    sent); streams progress lines meanwhile\n"
        "  --job-workers N   worker count for --submit (overrides the\n"
        "                    server's --workers for this job)\n"
        "  --net-timeout DUR client I/O deadline: connect, each\n"
        "                    request, each reply; a coordinator\n"
        "                    silent past DUR exits 7 (default: wait\n"
        "                    forever; keep DUR above the server's\n"
        "                    --progress-every when using --wait)\n"
        "  --journal PATH    dump a job journal, one record per line\n"
        "  --inject-crash-after N   fault injection: each worker dies\n"
        "                    after N fresh states (tests quarantine)\n"
        "exit codes: 0 verified/no violation, 1 violation or bound\n"
        "exceeded, 2 usage error, 5 interrupted (resumable),\n"
        "6 job quarantined as poison, 7 service unavailable\n");
}

void
listMutants()
{
    std::printf("%-34s %-22s %s\n", "mutant", "violates",
                "budget (walks x depth @ seed)");
    for (const auto &m : mutantRegistry()) {
        std::printf("%-34s %-22s %llu x %llu @ %llu\n  %s\n",
                    m.name.c_str(), m.violates.c_str(),
                    static_cast<unsigned long long>(m.budgetWalks),
                    static_cast<unsigned long long>(m.budgetDepth),
                    static_cast<unsigned long long>(m.budgetSeed),
                    m.description.c_str());
    }
}

void
printTrace(const std::vector<std::string> &steps,
           const std::string &bad)
{
    std::printf("  counterexample:\n");
    for (const auto &step : steps)
        std::printf("    %s\n", step.c_str());
    std::printf("  bad state: %s\n", bad.c_str());
}

/** Client verbs against a running coordinator. */
struct ClientVerbs
{
    bool submit = false;
    bool status = false;
    bool drain = false;
    bool cancelGiven = false;
    std::uint64_t cancelId = 0;
    bool waitGiven = false;
    std::uint64_t waitId = 0;

    bool
    any() const
    {
        return submit || status || drain || cancelGiven || waitGiven;
    }
};

const char *
progressPhaseName(unsigned phase)
{
    switch (phase) {
    case 0:
        return "run";
    case 1:
        return "quiesce";
    case 2:
        return "checkpoint";
    case 3:
        return "finish";
    case kProgressPhaseBackoff:
        return "backoff";
    default:
        return "?";
    }
}

int
runClient(const std::string &sock, const ClientVerbs &verbs,
          const JobSpec &spec, double netTimeout)
{
    std::string err;
    const int fd =
        looksLikeTcpAddress(sock)
            ? connectTcp(sock, err,
                         netTimeout > 0.0 ? netTimeout : 10.0)
            : connectUnix(sock, err);
    if (fd < 0) {
        std::fprintf(stderr, "neoverify: %s\n", err.c_str());
        return kExitServiceUnavailable;
    }
    MsgType type;
    std::vector<std::uint8_t> body;
    auto roundTrip = [&](MsgType req,
                         const std::vector<std::uint8_t> &b) {
        if (sendFrameDeadline(fd, req, b, netTimeout) &&
            recvFrameDeadline(fd, type, body, netTimeout))
            return true;
        std::fprintf(stderr, "neoverify: lost the coordinator "
                             "mid-request%s\n",
                     netTimeout > 0.0 ? " (or the deadline expired)"
                                      : "");
        return false;
    };
    auto bail = [&](int code) {
        ::close(fd);
        return code;
    };

    std::uint64_t submittedId = 0;
    if (verbs.submit) {
        SnapshotWriter w;
        spec.encode(w);
        if (!roundTrip(MsgType::ReqSubmit, w.take()))
            return bail(kExitServiceUnavailable);
        SnapshotReader r(body);
        if (type == MsgType::RspErr) {
            std::fprintf(stderr, "neoverify: %s\n",
                         getString(r).c_str());
            return bail(kExitUsage);
        }
        submittedId = r.getU64();
        std::printf("submitted job %llu\n",
                    static_cast<unsigned long long>(submittedId));
    }
    if (verbs.cancelGiven) {
        SnapshotWriter w;
        w.putU64(verbs.cancelId);
        if (!roundTrip(MsgType::ReqCancel, w.take()))
            return bail(kExitServiceUnavailable);
        SnapshotReader r(body);
        if (type == MsgType::RspErr) {
            std::fprintf(stderr, "neoverify: %s\n",
                         getString(r).c_str());
            return bail(kExitUsage);
        }
        std::printf("cancelled job %llu\n",
                    static_cast<unsigned long long>(verbs.cancelId));
    }
    if (verbs.drain) {
        if (!roundTrip(MsgType::ReqDrain, {}))
            return bail(kExitServiceUnavailable);
        std::printf("coordinator draining\n");
    }
    if (verbs.status) {
        if (!roundTrip(MsgType::ReqStatus, {}))
            return bail(kExitServiceUnavailable);
        SnapshotReader r(body);
        std::printf("%s", getString(r).c_str());
    }
    if (verbs.waitGiven) {
        const std::uint64_t id =
            verbs.waitId == 0 ? submittedId : verbs.waitId;
        if (id == 0) {
            std::fprintf(stderr, "neoverify: --wait 0 means the job "
                                 "--submit just sent, but nothing "
                                 "was submitted\n");
            return bail(kExitUsage);
        }
        SnapshotWriter w;
        w.putU64(id);
        if (!sendFrameDeadline(fd, MsgType::ReqWait, w.take(),
                               netTimeout)) {
            std::fprintf(stderr,
                         "neoverify: lost the coordinator "
                         "mid-request\n");
            return bail(kExitServiceUnavailable);
        }
        // The verdict arrives after zero or more streamed progress
        // frames; print those as they land (without the `states=` /
        // `transitions=` spelling the final verdict line owns, so
        // scrapers keying on it still find the exact counts first).
        for (;;) {
            if (!recvFrameDeadline(fd, type, body, netTimeout)) {
                std::fprintf(
                    stderr,
                    "neoverify: lost the coordinator while "
                    "waiting%s\n",
                    netTimeout > 0.0 ? " (or the deadline expired)"
                                     : "");
                return bail(kExitServiceUnavailable);
            }
            SnapshotReader r(body);
            if (type == MsgType::RspErr) {
                std::fprintf(stderr, "neoverify: %s\n",
                             getString(r).c_str());
                return bail(kExitUsage);
            }
            if (type == MsgType::RspProgress) {
                const std::uint64_t jid = r.getU64();
                const unsigned phase = r.getU8();
                const std::uint64_t st = r.getU64();
                const std::uint64_t tr = r.getU64();
                const double secs = r.getF64();
                std::printf("progress job=%llu phase=%s "
                            "states~%llu transitions~%llu "
                            "elapsed=%.1fs\n",
                            static_cast<unsigned long long>(jid),
                            progressPhaseName(phase),
                            static_cast<unsigned long long>(st),
                            static_cast<unsigned long long>(tr),
                            secs);
                std::fflush(stdout);
                continue;
            }
            const int code = r.getU8();
            std::printf("%s\n", getString(r).c_str());
            return bail(code);
        }
    }
    return bail(kExitClean);
}

/** Standalone chaos proxy (neoverify --chaos-proxy): runs until
 *  interrupted, echoing each injected fault to stderr. */
int
runChaosProxyCli(const std::string &listen,
                 const std::string &upstream,
                 const std::string &specText)
{
    ChaosSpec spec;
    std::string err;
    if (!specText.empty() && !ChaosSpec::parse(specText, spec, err))
        neo_fatal("--chaos: ", err);
    ChaosProxy proxy;
    proxy.setEcho(stderr);
    if (!proxy.start(listen, upstream, spec, err))
        neo_fatal("--chaos-proxy: ", err);
    // The bound address on stdout is the contract scripts rely on
    // (port 0 in --chaos-proxy means the kernel picked the port).
    std::printf("%s\n", proxy.boundAddress().c_str());
    std::fflush(stdout);
    std::fprintf(stderr, "chaos-proxy %s -> %s (%s)\n",
                 proxy.boundAddress().c_str(), upstream.c_str(),
                 spec.summary().c_str());
    installInterruptHandlers();
    while (!interruptRequested())
        ::poll(nullptr, 0, 200);
    proxy.stop();
    std::fprintf(stderr,
                 "chaos-proxy: %llu connection%s, %llu fault%s\n",
                 static_cast<unsigned long long>(
                     proxy.connectionsAccepted()),
                 proxy.connectionsAccepted() == 1 ? "" : "s",
                 static_cast<unsigned long long>(
                     proxy.faultsInjected()),
                 proxy.faultsInjected() == 1 ? "" : "s");
    return kExitClean;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string features = "neomesi";
    std::string system = "open";
    std::string method = "modified";
    std::string mutant;
    std::size_t n = 3;
    bool parametric = false;
    bool want_trace = false;
    bool walk = false;
    bool shrink = false;
    bool compact = false;
    WalkOptions wopt;
    ExploreLimits lim;
    lim.maxStates = 8'000'000;
    lim.maxSeconds = 600.0;
    bool seed_given = false, walks_given = false, depth_given = false;
    CheckpointConfig ckpt;
    bool every_given = false;
    ServeOptions serve;
    bool serving = false;
    std::string clientSock;
    std::string journalPath;
    ClientVerbs verbs;
    std::uint64_t crashAfter = 0;
    std::string joinAddr;
    std::string chaosListen, chaosUpstream, chaosSpecText;
    double netTimeout = 0.0;
    std::uint32_t jobWorkers = 0;

    ignoreSigpipe();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                neo_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--features") {
            features = next();
        } else if (arg == "--system") {
            system = next();
        } else if (arg == "--method") {
            method = next();
        } else if (arg == "--n") {
            n = static_cast<std::size_t>(parseU64OrDie(arg, next()));
        } else if (arg == "--parametric") {
            parametric = true;
        } else if (arg == "--max-states") {
            lim.maxStates = parseU64OrDie(arg, next());
        } else if (arg == "--max-seconds") {
            lim.maxSeconds = parseSecondsOrDie(arg, next());
        } else if (arg == "--max-memory") {
            lim.maxMemoryBytes = parseU64OrDie(arg, next());
        } else if (arg == "--threads") {
            lim.threads =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
            if (lim.threads == 0)
                neo_fatal("--threads needs a value >= 1");
        } else if (arg == "--no-rule-index") {
            lim.ruleIndex = false;
            wopt.ruleIndex = false;
        } else if (arg == "--walk") {
            walk = true;
        } else if (arg == "--walks") {
            wopt.walks = parseU64OrDie(arg, next());
            walks_given = true;
            if (wopt.walks == 0)
                neo_fatal("--walks needs a value >= 1");
        } else if (arg == "--depth") {
            wopt.depth = parseU64OrDie(arg, next());
            depth_given = true;
            if (wopt.depth == 0)
                neo_fatal("--depth needs a value >= 1");
        } else if (arg == "--seed") {
            wopt.seed = parseU64OrDie(arg, next());
            seed_given = true;
        } else if (arg == "--store-tier") {
            const std::string t = next();
            if (t == "plain")
                lim.store.tier = StoreTier::Plain;
            else if (t == "delta")
                lim.store.tier = StoreTier::Delta;
            else
                neo_fatal("--store-tier must be plain or delta "
                          "(hash compaction is --compact-hashes)");
        } else if (arg == "--anchor-every") {
            lim.store.anchorEvery =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
            if (lim.store.anchorEvery == 0)
                neo_fatal("--anchor-every needs a value >= 1");
        } else if (arg == "--compact-hashes") {
            compact = true;
        } else if (arg == "--compact-bits") {
            lim.store.compactBits =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
            if (lim.store.compactBits != 64 &&
                lim.store.compactBits != 128)
                neo_fatal("--compact-bits must be 64 or 128");
        } else if (arg == "--spill-dir") {
            lim.store.spillDir = next();
        } else if (arg == "--spill-hot-bytes") {
            lim.store.hotBytes = parseU64OrDie(arg, next());
        } else if (arg == "--checkpoint-dir") {
            ckpt.dir = next();
        } else if (arg == "--checkpoint-every") {
            ckpt.everySeconds = parseSecondsOrDie(arg, next());
            every_given = true;
        } else if (arg == "--resume") {
            ckpt.resume = true;
        } else if (arg == "--serve") {
            serve.sockPath = next();
            serving = true;
        } else if (arg == "--state-dir") {
            serve.stateDir = next();
        } else if (arg == "--workers") {
            serve.workers =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
            if (serve.workers == 0)
                neo_fatal("--workers needs a value >= 1");
        } else if (arg == "--heartbeat") {
            serve.heartbeatSeconds = parseSecondsOrDie(arg, next());
            if (serve.heartbeatSeconds <= 0.0)
                neo_fatal("--heartbeat needs a positive duration");
        } else if (arg == "--job-timeout") {
            serve.jobTimeoutSeconds = parseSecondsOrDie(arg, next());
        } else if (arg == "--retries") {
            serve.retryLimit = static_cast<std::uint32_t>(
                parseU64OrDie(arg, next()));
            if (serve.retryLimit == 0)
                neo_fatal("--retries needs a value >= 1");
        } else if (arg == "--backoff") {
            serve.backoffSeconds = parseSecondsOrDie(arg, next());
        } else if (arg == "--max-jobs") {
            serve.maxJobs =
                static_cast<unsigned>(parseU64OrDie(arg, next()));
            if (serve.maxJobs == 0)
                neo_fatal("--max-jobs needs a value >= 1");
        } else if (arg == "--progress-every") {
            serve.progressEverySeconds =
                parseSecondsOrDie(arg, next());
        } else if (arg == "--journal-compact-bytes") {
            serve.journalCompactBytes = parseU64OrDie(arg, next());
        } else if (arg == "--listen") {
            serve.listenAddr = next();
            if (!looksLikeTcpAddress(serve.listenAddr))
                neo_fatal("--listen needs host:port");
        } else if (arg == "--advertise") {
            serve.advertiseAddr = next();
            if (!looksLikeTcpAddress(serve.advertiseAddr))
                neo_fatal("--advertise needs host:port");
        } else if (arg == "--join") {
            joinAddr = next();
            if (!looksLikeTcpAddress(joinAddr))
                neo_fatal("--join needs host:port");
        } else if (arg == "--chaos-proxy") {
            chaosListen = next();
            if (!looksLikeTcpAddress(chaosListen))
                neo_fatal("--chaos-proxy needs host:port");
        } else if (arg == "--upstream") {
            chaosUpstream = next();
            if (!looksLikeTcpAddress(chaosUpstream))
                neo_fatal("--upstream needs host:port");
        } else if (arg == "--chaos") {
            chaosSpecText = next();
        } else if (arg == "--net-timeout") {
            netTimeout = parseSecondsOrDie(arg, next());
            if (netTimeout <= 0.0)
                neo_fatal("--net-timeout needs a positive duration");
        } else if (arg == "--job-workers") {
            jobWorkers = static_cast<std::uint32_t>(
                parseU64OrDie(arg, next()));
            if (jobWorkers == 0)
                neo_fatal("--job-workers needs a value >= 1");
        } else if (arg == "--sock") {
            clientSock = next();
        } else if (arg == "--submit") {
            verbs.submit = true;
        } else if (arg == "--status") {
            verbs.status = true;
        } else if (arg == "--drain") {
            verbs.drain = true;
        } else if (arg == "--cancel") {
            verbs.cancelId = parseU64OrDie(arg, next());
            verbs.cancelGiven = true;
        } else if (arg == "--wait") {
            verbs.waitId = parseU64OrDie(arg, next());
            verbs.waitGiven = true;
        } else if (arg == "--journal") {
            journalPath = next();
        } else if (arg == "--inject-crash-after") {
            crashAfter = parseU64OrDie(arg, next());
        } else if (arg == "--shrink") {
            shrink = true;
        } else if (arg == "--mutant") {
            mutant = next();
        } else if (arg == "--list-mutants") {
            listMutants();
            return 0;
        } else if (arg == "--trace") {
            want_trace = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    // ---- verification service dispatch ----
    if (!journalPath.empty()) {
        std::string err;
        if (!dumpJournal(journalPath, stdout, err))
            neo_fatal("--journal: ", err);
        return kExitClean;
    }
    if (!chaosListen.empty() || !chaosUpstream.empty()) {
        if (chaosListen.empty() || chaosUpstream.empty())
            neo_fatal("--chaos-proxy and --upstream go together");
        if (serving || !joinAddr.empty() || verbs.any())
            neo_fatal("--chaos-proxy is a standalone mode");
        return runChaosProxyCli(chaosListen, chaosUpstream,
                                chaosSpecText);
    }
    if (!joinAddr.empty()) {
        if (serving || verbs.any() || !clientSock.empty())
            neo_fatal("--join is a standalone agent; it takes only "
                      "--state-dir");
        JoinOptions jopt;
        jopt.coordAddr = joinAddr;
        jopt.stateDir = serve.stateDir;
        return runJoinAgent(jopt);
    }
    if (serving) {
        if (verbs.submit || verbs.status || verbs.cancelGiven ||
            verbs.waitGiven || !clientSock.empty())
            neo_fatal("--serve is a server; client verbs need "
                      "--sock against a running coordinator");
        if (verbs.drain)
            serve.drainAndExit = true;
        if (every_given)
            serve.checkpointEverySeconds = ckpt.everySeconds;
        return runCoordinator(serve);
    }
    if (verbs.any()) {
        if (clientSock.empty())
            neo_fatal("client verbs (--submit/--status/--cancel/"
                      "--drain/--wait) need --sock SOCK");
        JobSpec spec;
        spec.features = features;
        spec.system = system;
        spec.method = method;
        spec.mutant = mutant;
        spec.n = n;
        spec.maxStates = lim.maxStates;
        spec.maxSeconds = lim.maxSeconds;
        spec.crashAfter = crashAfter;
        spec.workers = jobWorkers;
        return runClient(clientSock, verbs, spec, netTimeout);
    }
    if (!clientSock.empty())
        neo_fatal("--sock needs a client verb "
                  "(--submit/--status/--cancel/--drain/--wait)");

    // ---- capacity-tier setup ----
    if (compact) {
        lim.store.tier = StoreTier::Compact;
        // Both refusals are soundness, not convenience: a shrink
        // needs exact state identity, and a parametric cutoff proof
        // built on probabilistic per-instance verdicts is no proof.
        if (shrink)
            neo_fatal("--shrink is incompatible with "
                      "--compact-hashes: fingerprints cannot replay "
                      "or minimize a trace soundly");
        if (parametric)
            neo_fatal("--parametric is incompatible with "
                      "--compact-hashes: the cutoff argument needs "
                      "exact (non-probabilistic) instance verdicts");
    }

    // ---- crash-safe checkpointing setup ----
    if (ckpt.dir.empty() && (ckpt.resume || every_given))
        neo_fatal("--resume/--checkpoint-every require "
                  "--checkpoint-dir");
    if (!ckpt.dir.empty()) {
        if (!every_given)
            ckpt.everySeconds = 30.0;
        lim.checkpoint = &ckpt;
        wopt.checkpoint = &ckpt;
        installInterruptHandlers();
    }

    // ---- model selection: a corpus mutant or a bundled model ----
    ModelShape shape;
    std::string model_desc;
    TransitionSystem ts = [&]() -> TransitionSystem {
        if (!mutant.empty()) {
            const Mutant *m = findMutant(mutant);
            if (!m) {
                std::fprintf(stderr,
                             "unknown mutant %s (try --list-mutants)\n",
                             mutant.c_str());
                std::exit(2);
            }
            // The mutant documents its own falsification budget;
            // explicit flags still override it.
            if (!walks_given)
                wopt.walks = m->budgetWalks;
            if (!depth_given)
                wopt.depth = m->budgetDepth;
            if (!seed_given)
                wopt.seed = m->budgetSeed;
            model_desc = "mutant " + m->name;
            n = m->n;
            return m->build(shape);
        }

        VerifFeatures f;
        if (features == "msi")
            f = VerifFeatures::baselineMSI();
        else if (features == "msi-incl")
            f = VerifFeatures::inclusiveMSI();
        else if (features == "neomesi")
            f = VerifFeatures::neoMESI();
        else if (features == "moesi")
            f = VerifFeatures::withOwned();
        else if (features == "nsmesi") {
            f = VerifFeatures::neoMESI();
            f.nonSiblingFwd = true;
        } else if (features != "german") {
            neo_fatal("unknown feature set: ", features);
        }

        CompositionMethod cm = CompositionMethod::Modified;
        if (method == "none")
            cm = CompositionMethod::None;
        else if (method == "original")
            cm = CompositionMethod::Original;
        else if (method != "modified")
            neo_fatal("unknown method: ", method);

        if (parametric) {
            // Handled below from the factory; build a placeholder
            // instance so the sweep path can ignore `ts`.
            auto factory = [&]() -> ModelFactory {
                if (features == "german")
                    return germanModelFactory();
                if (system == "closed")
                    return closedModelFactory(f);
                return openModelFactory(f, cm);
            }();
            const ParametricResult r =
                verifyParametric(factory, 1, 8, lim);
            std::printf("parametric sweep (%u thread%s): %s\n",
                        lim.threads, lim.threads == 1 ? "" : "s",
                        verifStatusName(r.status));
            if (r.resumed)
                std::printf("  resumed from checkpoint "
                            "(%zu instance%s restored)\n",
                            r.restoredInstances,
                            r.restoredInstances == 1 ? "" : "s");
            for (std::size_t k = 0; k < r.instanceSizes.size(); ++k) {
                std::printf(
                    "  N=%zu: %-10s %9llu states  %zu views\n",
                    r.instanceSizes[k],
                    verifStatusName(r.perInstance[k].status),
                    static_cast<unsigned long long>(
                        r.perInstance[k].statesExplored),
                    r.abstractSetSizes[k]);
            }
            std::printf("%s (%.2fs)\n", r.detail.c_str(), r.seconds);
            if (r.status == VerifStatus::Interrupted) {
                std::printf("snapshot saved to %s; rerun with "
                            "--resume to continue\n",
                            ckpt.dir.c_str());
                std::exit(kExitInterrupted);
            }
            std::exit(r.converged && r.status == VerifStatus::Verified
                          ? kExitClean
                          : kExitViolation);
        }

        model_desc = features + " (" + system + ", " + method + ")";
        if (features == "german")
            return buildGermanModel(n, shape);
        if (system == "closed")
            return buildClosedModel(n, f, shape);
        return buildOpenModel(n, f, cm, shape);
    }();

    if (walk) {
        wopt.threads = lim.threads;
        wopt.store = lim.store;
        const WalkResult w = walkExplore(ts, wopt);
        if (w.resumed)
            std::printf("resumed from checkpoint (%llu walk%s "
                        "already complete)\n",
                        static_cast<unsigned long long>(
                            w.restoredWalks),
                        w.restoredWalks == 1 ? "" : "s");
        std::printf(
            "%s, N=%zu: random walk (%llu x %llu @ seed %llu, "
            "%u thread%s): %s\n",
            model_desc.c_str(), n,
            static_cast<unsigned long long>(wopt.walks),
            static_cast<unsigned long long>(wopt.depth),
            static_cast<unsigned long long>(wopt.seed), wopt.threads,
            wopt.threads == 1 ? "" : "s",
            w.status == VerifStatus::Verified
                ? "NO VIOLATION FOUND (walks cannot prove safety)"
                : verifStatusName(w.status));
        std::printf(
            "  %llu steps in %llu walks (%llu dead ends), %.2fs, "
            "%.0f states/s\n",
            static_cast<unsigned long long>(w.stepsTaken),
            static_cast<unsigned long long>(w.walksRun),
            static_cast<unsigned long long>(w.deadEnds), w.seconds,
            w.seconds > 0.0
                ? static_cast<double>(w.stepsTaken) / w.seconds
                : 0.0);
        if (w.status == VerifStatus::InvariantViolated) {
            std::printf("  violated invariant: %s (walk %llu, "
                        "raw trace length %zu)\n",
                        w.violatedInvariant.c_str(),
                        static_cast<unsigned long long>(w.walkIndex),
                        w.trace.size());
            if (shrink) {
                const ShrinkResult sr = shrinkTrace(
                    ts, w.trace, w.violatedInvariant, 50'000,
                    lim.store);
                std::printf("  shrunk: %zu -> %zu steps "
                            "(%llu replays)\n",
                            sr.rawLength, sr.shrunkLength,
                            static_cast<unsigned long long>(
                                sr.replays));
                if (want_trace)
                    printTrace(sr.traceNames, sr.badState);
            } else if (want_trace) {
                printTrace(w.traceNames, w.badState);
            }
        }
        if (w.status == VerifStatus::Interrupted) {
            std::printf("snapshot saved to %s; rerun with --resume "
                        "to continue\n",
                        ckpt.dir.c_str());
            return kExitInterrupted;
        }
        return w.status == VerifStatus::Verified ? kExitClean
                                                 : kExitViolation;
    }

    const ExploreResult r = explore(ts, lim, false, true);
    if (r.resumed)
        std::printf("resumed from checkpoint (%llu states restored)\n",
                    static_cast<unsigned long long>(r.restoredStates));
    std::printf("%s, N=%zu, %u thread%s: %s\n", model_desc.c_str(), n,
                lim.threads, lim.threads == 1 ? "" : "s",
                verifStatusName(r.status));
    std::printf("  %llu states, %llu transitions, %.2fs, ~%.1f MB\n",
                static_cast<unsigned long long>(r.statesExplored),
                static_cast<unsigned long long>(r.transitionsFired),
                r.seconds,
                static_cast<double>(r.memoryBytes) / (1024.0 * 1024.0));
    std::printf("  rule index: %llu guard evals (%llu skipped), "
                "%llu in-place firings, %llu canon-identity hits\n",
                static_cast<unsigned long long>(r.guardEvals),
                static_cast<unsigned long long>(r.guardEvalsSkipped),
                static_cast<unsigned long long>(r.inPlaceFirings),
                static_cast<unsigned long long>(r.canonIdentityHits));
    if (lim.store.tier != StoreTier::Plain ||
        !lim.store.spillDir.empty())
        std::printf("  store tier: %s%s, %llu region sheds to disk\n",
                    storeTierName(lim.store.tier),
                    lim.store.spillDir.empty() ? "" : "+spill",
                    static_cast<unsigned long long>(r.spillSheds));
    if (r.compactHashes)
        std::printf("  hash compaction (%u-bit): states counted by "
                    "fingerprint; P(missed state) <= %.3g%s\n",
                    lim.store.compactBits, r.omissionProbability,
                    r.status == VerifStatus::Verified
                        ? " — verified only up to that probability"
                        : "");
    if (r.degradedTrace)
        std::printf("  memory pressure shed predecessor links: counts "
                    "are exact, no counterexample trace\n");
    if (r.status == VerifStatus::InvariantViolated) {
        std::printf("  violated invariant: %s\n",
                    r.violatedInvariant.c_str());
        if (want_trace)
            printTrace(r.trace, r.badState);
    }
    if (r.status == VerifStatus::Interrupted ||
        (r.status == VerifStatus::LimitExceeded &&
         lim.checkpoint != nullptr)) {
        std::printf("snapshot saved to %s; rerun with --resume to "
                    "continue%s\n",
                    ckpt.dir.c_str(),
                    r.status == VerifStatus::LimitExceeded
                        ? " (raise the exceeded bound)"
                        : "");
        if (r.status == VerifStatus::Interrupted)
            return kExitInterrupted;
    }
    return r.status == VerifStatus::Verified ? kExitClean
                                             : kExitViolation;
}
