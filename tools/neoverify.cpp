/**
 * @file
 * neoverify — command-line front end for the push-button verifier.
 *
 * Examples:
 *   neoverify --features neomesi --system open --method modified --n 3
 *   neoverify --features neomesi --parametric
 *   neoverify --features nsmesi --system open --method modified --n 2
 *     (demonstrates the composition failure of non-sibling forwarding)
 *   neoverify --features german --n 4
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verif/explorer.hpp"
#include "verif/models/flat_closed.hpp"
#include "verif/models/flat_open.hpp"
#include "verif/models/german.hpp"
#include "verif/parametric.hpp"

using namespace neo;
using namespace neo::verif;

namespace
{

void
usage()
{
    std::printf(
        "usage: neoverify [options]\n"
        "  --features NAME   msi | msi-incl | neomesi | moesi | nsmesi\n"
        "                    | german            (default neomesi)\n"
        "  --system KIND     closed | open       (default open)\n"
        "  --method NAME     none | original | modified\n"
        "                    (default modified; open systems only)\n"
        "  --n N             leaves in the flat instance (default 3)\n"
        "  --parametric      sweep N with cutoff detection instead\n"
        "  --max-states N    state bound          (default 8000000)\n"
        "  --max-seconds S   time bound           (default 600)\n"
        "  --max-memory B    live-memory bound in bytes (default off)\n"
        "  --threads N       exploration workers; >1 uses the sharded\n"
        "                    parallel explorer    (default 1)\n"
        "  --trace           print the counterexample, if any\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string features = "neomesi";
    std::string system = "open";
    std::string method = "modified";
    std::size_t n = 3;
    bool parametric = false;
    bool want_trace = false;
    ExploreLimits lim{8'000'000, 600.0};

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                neo_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--features") {
            features = next();
        } else if (arg == "--system") {
            system = next();
        } else if (arg == "--method") {
            method = next();
        } else if (arg == "--n") {
            n = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--parametric") {
            parametric = true;
        } else if (arg == "--max-states") {
            lim.maxStates = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--max-seconds") {
            lim.maxSeconds = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--max-memory") {
            lim.maxMemoryBytes =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--threads") {
            lim.threads = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
            if (lim.threads == 0)
                neo_fatal("--threads needs a value >= 1");
        } else if (arg == "--trace") {
            want_trace = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    VerifFeatures f;
    if (features == "msi")
        f = VerifFeatures::baselineMSI();
    else if (features == "msi-incl")
        f = VerifFeatures::inclusiveMSI();
    else if (features == "neomesi")
        f = VerifFeatures::neoMESI();
    else if (features == "moesi")
        f = VerifFeatures::withOwned();
    else if (features == "nsmesi") {
        f = VerifFeatures::neoMESI();
        f.nonSiblingFwd = true;
    } else if (features != "german") {
        neo_fatal("unknown feature set: ", features);
    }

    CompositionMethod cm = CompositionMethod::Modified;
    if (method == "none")
        cm = CompositionMethod::None;
    else if (method == "original")
        cm = CompositionMethod::Original;
    else if (method != "modified")
        neo_fatal("unknown method: ", method);

    auto factory = [&]() -> ModelFactory {
        if (features == "german")
            return germanModelFactory();
        if (system == "closed")
            return closedModelFactory(f);
        return openModelFactory(f, cm);
    }();

    if (parametric) {
        const ParametricResult r = verifyParametric(factory, 1, 8, lim);
        std::printf("parametric sweep (%u thread%s): %s\n",
                    lim.threads, lim.threads == 1 ? "" : "s",
                    verifStatusName(r.status));
        for (std::size_t k = 0; k < r.instanceSizes.size(); ++k) {
            std::printf("  N=%zu: %-10s %9llu states  %zu views\n",
                        r.instanceSizes[k],
                        verifStatusName(r.perInstance[k].status),
                        static_cast<unsigned long long>(
                            r.perInstance[k].statesExplored),
                        r.abstractSetSizes[k]);
        }
        std::printf("%s (%.2fs)\n", r.detail.c_str(), r.seconds);
        return r.converged &&
                       r.status == VerifStatus::Verified
                   ? 0
                   : 1;
    }

    ModelShape shape;
    const TransitionSystem ts = [&] {
        if (features == "german")
            return buildGermanModel(n, shape);
        if (system == "closed")
            return buildClosedModel(n, f, shape);
        return buildOpenModel(n, f, cm, shape);
    }();

    const ExploreResult r = explore(ts, lim, false, true);
    std::printf("%s (%s, %s, N=%zu, %u thread%s): %s\n",
                features.c_str(), system.c_str(), method.c_str(), n,
                lim.threads, lim.threads == 1 ? "" : "s",
                verifStatusName(r.status));
    std::printf("  %llu states, %llu transitions, %.2fs, ~%.1f MB\n",
                static_cast<unsigned long long>(r.statesExplored),
                static_cast<unsigned long long>(r.transitionsFired),
                r.seconds,
                static_cast<double>(r.memoryBytes) / (1024.0 * 1024.0));
    if (r.status == VerifStatus::InvariantViolated) {
        std::printf("  violated invariant: %s\n",
                    r.violatedInvariant.c_str());
        if (want_trace) {
            std::printf("  counterexample:\n");
            for (const auto &step : r.trace)
                std::printf("    %s\n", step.c_str());
            std::printf("  bad state: %s\n", r.badState.c_str());
        }
    }
    return r.status == VerifStatus::Verified ? 0 : 1;
}
